//! Operation traces: the unit of input for every experiment.
//!
//! Traces round-trip through a hand-rolled serializer for the same JSON wire
//! format serde would produce (`{"n":5,"ops":[{"Unite":[0,4]},…]}`); the
//! offline build environment cannot fetch `serde`, and the format is simple
//! enough that a ~60-line parser is the smaller dependency.

/// One union-find operation over elements of `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `Unite(x, y)`: merge the sets containing `x` and `y`.
    Unite(usize, usize),
    /// `SameSet(x, y)`: query whether `x` and `y` share a set.
    SameSet(usize, usize),
}

impl Op {
    /// The two operand elements.
    pub fn operands(self) -> (usize, usize) {
        match self {
            Op::Unite(x, y) | Op::SameSet(x, y) => (x, y),
        }
    }

    /// `true` for `Unite`.
    pub fn is_unite(self) -> bool {
        matches!(self, Op::Unite(..))
    }
}

/// A reproducible operation trace over the universe `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Universe size; all operands are `< n`.
    pub n: usize,
    /// The operations, in program order (per-thread order after sharding).
    pub ops: Vec<Op>,
}

impl Workload {
    /// Wraps a raw op list, validating operands.
    ///
    /// # Panics
    ///
    /// Panics if any operand is `>= n`.
    pub fn new(n: usize, ops: Vec<Op>) -> Self {
        for (i, op) in ops.iter().enumerate() {
            let (x, y) = op.operands();
            assert!(x < n && y < n, "op {i} ({op:?}) out of universe 0..{n}");
        }
        Workload { n, ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of operations that are unites.
    pub fn unite_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_unite()).count() as f64 / self.ops.len() as f64
    }

    /// Splits the trace into `p` round-robin shards (op `i` goes to thread
    /// `i % p`), the assignment the experiments use so each thread sees a
    /// statistically identical stream.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn shard(&self, p: usize) -> Vec<Vec<Op>> {
        assert!(p > 0, "cannot shard across zero threads");
        let mut shards = vec![Vec::with_capacity(self.ops.len() / p + 1); p];
        for (i, &op) in self.ops.iter().enumerate() {
            shards[i % p].push(op);
        }
        shards
    }

    /// Serializes the trace to JSON (for archiving next to results).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(16 + 24 * self.ops.len());
        let _ = write!(out, "{{\"n\":{},\"ops\":[", self.n);
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (tag, (x, y)) = match op {
                Op::Unite(..) => ("Unite", op.operands()),
                Op::SameSet(..) => ("SameSet", op.operands()),
            };
            let _ = write!(out, "{{\"{tag}\":[{x},{y}]}}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a trace previously produced by [`to_json`](Workload::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or if operands exceed the
    /// declared universe.
    pub fn from_json(s: &str) -> Result<Self, ParseError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.expect_byte(b'{')?;
        p.expect_key("n")?;
        let n = p.number()?;
        p.expect_byte(b',')?;
        p.expect_key("ops")?;
        p.expect_byte(b'[')?;
        let mut ops = Vec::new();
        p.skip_ws();
        if p.peek() != Some(b']') {
            loop {
                ops.push(p.op()?);
                p.skip_ws();
                match p.next_byte()? {
                    b',' => continue,
                    b']' => break,
                    c => return Err(p.err(format!("expected ',' or ']', found {:?}", c as char))),
                }
            }
        } else {
            p.pos += 1;
        }
        p.expect_byte(b'}')?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after trace".to_string()));
        }
        for op in &ops {
            let (x, y) = op.operands();
            if x >= n || y >= n {
                return Err(ParseError(format!("operand out of universe 0..{n}: {op:?}")));
            }
        }
        Ok(Workload { n, ops })
    }
}

/// Error returned by [`Workload::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Minimal recursive-descent parser for exactly the trace wire format.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: String) -> ParseError {
        ParseError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, ParseError> {
        let b = self.peek().ok_or_else(|| self.err("unexpected end of input".to_string()))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ParseError> {
        self.skip_ws();
        let got = self.next_byte()?;
        if got != want {
            return Err(self.err(format!("expected {:?}, found {:?}", want as char, got as char)));
        }
        Ok(())
    }

    /// Consumes `"key":`.
    fn expect_key(&mut self, key: &str) -> Result<(), ParseError> {
        self.expect_byte(b'"')?;
        for want in key.bytes() {
            if self.next_byte()? != want {
                return Err(self.err(format!("expected key {key:?}")));
            }
        }
        self.expect_byte(b'"')?;
        self.expect_byte(b':')
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number".to_string()));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|e| self.err(format!("number out of range: {e}")))
    }

    /// Consumes `{"Unite":[x,y]}` or `{"SameSet":[x,y]}`.
    fn op(&mut self) -> Result<Op, ParseError> {
        self.expect_byte(b'{')?;
        self.expect_byte(b'"')?;
        let tag_start = self.pos;
        while self.peek().is_some_and(|b| b != b'"') {
            self.pos += 1;
        }
        let tag = std::str::from_utf8(&self.bytes[tag_start..self.pos])
            .map_err(|_| self.err("op tag is not UTF-8".to_string()))?;
        let unite = match tag {
            "Unite" => true,
            "SameSet" => false,
            other => return Err(self.err(format!("unknown op tag {other:?}"))),
        };
        self.expect_byte(b'"')?;
        self.expect_byte(b':')?;
        self.expect_byte(b'[')?;
        let x = self.number()?;
        self.expect_byte(b',')?;
        let y = self.number()?;
        self.expect_byte(b']')?;
        self.expect_byte(b'}')?;
        Ok(if unite { Op::Unite(x, y) } else { Op::SameSet(x, y) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_and_kind() {
        assert_eq!(Op::Unite(1, 2).operands(), (1, 2));
        assert_eq!(Op::SameSet(3, 4).operands(), (3, 4));
        assert!(Op::Unite(0, 0).is_unite());
        assert!(!Op::SameSet(0, 0).is_unite());
    }

    #[test]
    fn sharding_is_round_robin_and_complete() {
        let ops: Vec<Op> = (0..10).map(|i| Op::Unite(i, i)).collect();
        let w = Workload::new(10, ops.clone());
        let shards = w.shard(3);
        assert_eq!(shards[0], vec![ops[0], ops[3], ops[6], ops[9]]);
        assert_eq!(shards[1], vec![ops[1], ops[4], ops[7]]);
        assert_eq!(shards[2], vec![ops[2], ops[5], ops[8]]);
    }

    #[test]
    fn shard_more_threads_than_ops() {
        let w = Workload::new(4, vec![Op::SameSet(0, 1)]);
        let shards = w.shard(8);
        assert_eq!(shards.iter().filter(|s| !s.is_empty()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn shard_zero_panics() {
        Workload::new(1, vec![]).shard(0);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn oob_ops_rejected() {
        Workload::new(2, vec![Op::Unite(0, 2)]);
    }

    #[test]
    fn json_round_trip() {
        let w = Workload::new(5, vec![Op::Unite(0, 4), Op::SameSet(2, 3)]);
        let s = w.to_json();
        let back = Workload::from_json(&s).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn json_rejects_oob() {
        let s = r#"{"n":2,"ops":[{"Unite":[0,9]}]}"#;
        assert!(Workload::from_json(s).is_err());
    }

    #[test]
    fn unite_fraction_counts() {
        let w = Workload::new(
            4,
            vec![Op::Unite(0, 1), Op::SameSet(0, 1), Op::Unite(2, 3), Op::Unite(1, 2)],
        );
        assert!((w.unite_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Workload::new(1, vec![]).unite_fraction(), 0.0);
    }
}

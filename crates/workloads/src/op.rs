//! Operation traces: the unit of input for every experiment.

use serde::{Deserialize, Serialize};

/// One union-find operation over elements of `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// `Unite(x, y)`: merge the sets containing `x` and `y`.
    Unite(usize, usize),
    /// `SameSet(x, y)`: query whether `x` and `y` share a set.
    SameSet(usize, usize),
}

impl Op {
    /// The two operand elements.
    pub fn operands(self) -> (usize, usize) {
        match self {
            Op::Unite(x, y) | Op::SameSet(x, y) => (x, y),
        }
    }

    /// `true` for `Unite`.
    pub fn is_unite(self) -> bool {
        matches!(self, Op::Unite(..))
    }
}

/// A reproducible operation trace over the universe `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Universe size; all operands are `< n`.
    pub n: usize,
    /// The operations, in program order (per-thread order after sharding).
    pub ops: Vec<Op>,
}

impl Workload {
    /// Wraps a raw op list, validating operands.
    ///
    /// # Panics
    ///
    /// Panics if any operand is `>= n`.
    pub fn new(n: usize, ops: Vec<Op>) -> Self {
        for (i, op) in ops.iter().enumerate() {
            let (x, y) = op.operands();
            assert!(x < n && y < n, "op {i} ({op:?}) out of universe 0..{n}");
        }
        Workload { n, ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of operations that are unites.
    pub fn unite_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_unite()).count() as f64 / self.ops.len() as f64
    }

    /// Splits the trace into `p` round-robin shards (op `i` goes to thread
    /// `i % p`), the assignment the experiments use so each thread sees a
    /// statistically identical stream.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn shard(&self, p: usize) -> Vec<Vec<Op>> {
        assert!(p > 0, "cannot shard across zero threads");
        let mut shards = vec![Vec::with_capacity(self.ops.len() / p + 1); p];
        for (i, &op) in self.ops.iter().enumerate() {
            shards[i % p].push(op);
        }
        shards
    }

    /// Serializes the trace to JSON (for archiving next to results).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("workload serialization cannot fail")
    }

    /// Parses a trace previously produced by [`to_json`](Workload::to_json).
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input, or a
    /// custom message if operands exceed the declared universe.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let w: Workload = serde_json::from_str(s)?;
        use serde::de::Error;
        for op in &w.ops {
            let (x, y) = op.operands();
            if x >= w.n || y >= w.n {
                return Err(serde_json::Error::custom(format!(
                    "operand out of universe 0..{}: {op:?}",
                    w.n
                )));
            }
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_and_kind() {
        assert_eq!(Op::Unite(1, 2).operands(), (1, 2));
        assert_eq!(Op::SameSet(3, 4).operands(), (3, 4));
        assert!(Op::Unite(0, 0).is_unite());
        assert!(!Op::SameSet(0, 0).is_unite());
    }

    #[test]
    fn sharding_is_round_robin_and_complete() {
        let ops: Vec<Op> = (0..10).map(|i| Op::Unite(i, i)).collect();
        let w = Workload::new(10, ops.clone());
        let shards = w.shard(3);
        assert_eq!(shards[0], vec![ops[0], ops[3], ops[6], ops[9]]);
        assert_eq!(shards[1], vec![ops[1], ops[4], ops[7]]);
        assert_eq!(shards[2], vec![ops[2], ops[5], ops[8]]);
    }

    #[test]
    fn shard_more_threads_than_ops() {
        let w = Workload::new(4, vec![Op::SameSet(0, 1)]);
        let shards = w.shard(8);
        assert_eq!(shards.iter().filter(|s| !s.is_empty()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn shard_zero_panics() {
        Workload::new(1, vec![]).shard(0);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn oob_ops_rejected() {
        Workload::new(2, vec![Op::Unite(0, 2)]);
    }

    #[test]
    fn json_round_trip() {
        let w = Workload::new(5, vec![Op::Unite(0, 4), Op::SameSet(2, 3)]);
        let s = w.to_json();
        let back = Workload::from_json(&s).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn json_rejects_oob() {
        let s = r#"{"n":2,"ops":[{"Unite":[0,9]}]}"#;
        assert!(Workload::from_json(s).is_err());
    }

    #[test]
    fn unite_fraction_counts() {
        let w = Workload::new(4, vec![Op::Unite(0, 1), Op::SameSet(0, 1), Op::Unite(2, 3), Op::Unite(1, 2)]);
        assert!((w.unite_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Workload::new(1, vec![]).unite_fraction(), 0.0);
    }
}

//! Keyed workload generation: the entity-resolution-shaped traces.
//!
//! The array workloads draw operands from a dense, pre-sized `0..n` — the
//! shape of the paper's experiments, but not of any production consumer.
//! Real dedup/ER traffic arrives as **keys**: record ids, e-mail strings,
//! sparse 64-bit hashes, with no universe size known up front and a
//! constant trickle of never-seen keys (insert-heavy churn). This module
//! generates that shape for the `KeyedDsu` experiments along the three
//! axes the array generators cannot express:
//!
//! * **string keys** — heap-allocated, hash-cost-bearing operands
//!   ([`KeyedWorkload::into_strings`]);
//! * **sparse u64 universes** — 64-bit keys scattered over the whole word
//!   range, so no dense array could hold them
//!   ([`KeyedWorkload::into_sparse_u64`]);
//! * **insert-heavy churn** — a tunable fraction of operands are keys the
//!   trace has never mentioned before ([`KeyedSpec::fresh_fraction`]),
//!   optionally with revisits biased to recently introduced keys
//!   ([`KeyedSpec::revisit_window`]) the way a crawler frontier or log
//!   segment revisits what it just touched.
//!
//! Generation is two-phase: [`KeyedSpec::generate`] produces a trace over
//! **dense key indices** (index `k` = the `k`-th distinct key the trace
//! introduces), and the `into_*` adapters materialize those indices as
//! concrete key types. The index trace is the oracle-friendly form — tests
//! replay it against a `HashMap`-backed sequential oracle — and one spec +
//! seed yields byte-identical traces across all key materializations.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// One keyed operation over keys of type `K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyedOp<K> {
    /// Unite the sets of the two keys, inserting unseen keys first.
    Merge(K, K),
    /// Query whether the two keys share a set (never inserts).
    SameSet(K, K),
}

impl<K> KeyedOp<K> {
    /// Both operand keys, in order.
    pub fn keys(&self) -> (&K, &K) {
        match self {
            KeyedOp::Merge(a, b) | KeyedOp::SameSet(a, b) => (a, b),
        }
    }

    /// `true` for [`Merge`](KeyedOp::Merge).
    pub fn is_merge(&self) -> bool {
        matches!(self, KeyedOp::Merge(..))
    }

    /// The same operation with both keys rebuilt by `f`.
    pub fn map<T>(&self, mut f: impl FnMut(&K) -> T) -> KeyedOp<T> {
        match self {
            KeyedOp::Merge(a, b) => KeyedOp::Merge(f(a), f(b)),
            KeyedOp::SameSet(a, b) => KeyedOp::SameSet(f(a), f(b)),
        }
    }
}

/// A keyed operation trace plus the number of distinct keys it mentions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedWorkload<K> {
    /// The operations, in arrival order.
    pub ops: Vec<KeyedOp<K>>,
    /// Distinct keys mentioned anywhere in the trace (merge or query).
    pub distinct_keys: usize,
}

impl<K> KeyedWorkload<K> {
    /// Operation count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of operations that are merges.
    pub fn merge_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_merge()).count() as f64 / self.ops.len() as f64
    }

    /// Deals the trace round-robin across `p` workers (op `i` to worker
    /// `i % p`), preserving each worker's arrival order — the same
    /// dealing the array [`Workload::shard`](crate::Workload::shard) uses,
    /// so threaded keyed and array experiments split work identically.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn shard(&self, p: usize) -> Vec<Vec<KeyedOp<K>>>
    where
        K: Clone,
    {
        assert!(p > 0, "cannot shard across zero workers");
        let mut shards: Vec<Vec<KeyedOp<K>>> = (0..p).map(|_| Vec::new()).collect();
        for (i, op) in self.ops.iter().enumerate() {
            shards[i % p].push(op.clone());
        }
        shards
    }

    /// The same trace with every key rebuilt by `f` (must be injective, or
    /// distinct indices would collapse into one key).
    pub fn map_keys<T>(&self, mut f: impl FnMut(&K) -> T) -> KeyedWorkload<T> {
        KeyedWorkload {
            ops: self.ops.iter().map(|op| op.map(&mut f)).collect(),
            distinct_keys: self.distinct_keys,
        }
    }
}

impl KeyedWorkload<usize> {
    /// Materializes the index trace over a **sparse 64-bit universe**:
    /// index `k` becomes `splitmix(salt, k)`, scattering keys across the
    /// whole `u64` range (splitmix64 is a bijection, so distinct indices
    /// stay distinct).
    pub fn into_sparse_u64(&self, salt: u64) -> KeyedWorkload<u64> {
        self.map_keys(|&k| mix(salt, k as u64))
    }

    /// Materializes the index trace as **string keys**: index `k` becomes
    /// `"{prefix}-{hex of splitmix(salt, k)}"` — distinct, realistic-length
    /// identifiers whose hashing cost the dense trace never pays.
    pub fn into_strings(&self, prefix: &str, salt: u64) -> KeyedWorkload<String> {
        self.map_keys(|&k| format!("{prefix}-{:016x}", mix(salt, k as u64)))
    }
}

/// splitmix64 keyed by a salt — the key materializers' index scrambler.
fn mix(salt: u64, k: u64) -> u64 {
    let mut z = salt.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A recipe for a keyed trace: op count, merge : query mix, churn rate,
/// and revisit recency. Same spec + same seed = same trace.
///
/// # Example
///
/// ```
/// use dsu_workloads::KeyedSpec;
///
/// let trace = KeyedSpec::new(10_000)
///     .merge_fraction(0.7)
///     .fresh_fraction(0.4)
///     .revisit_window(256)
///     .generate(7);
/// assert_eq!(trace.len(), 10_000);
/// let strings = trace.into_strings("user", 7);
/// let sparse = trace.into_sparse_u64(7);
/// assert_eq!(strings.distinct_keys, sparse.distinct_keys);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KeyedSpec {
    m: usize,
    merge_fraction: f64,
    fresh_fraction: f64,
    revisit_window: Option<usize>,
}

impl KeyedSpec {
    /// A spec for `m` keyed operations; defaults: 70% merges (ingest-heavy,
    /// the ER shape), 50% fresh operands, revisits uniform over everything
    /// seen.
    pub fn new(m: usize) -> Self {
        KeyedSpec { m, merge_fraction: 0.7, fresh_fraction: 0.5, revisit_window: None }
    }

    /// Sets the fraction of operations that are merges (rest are same-set
    /// queries).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn merge_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "merge fraction must be in [0, 1]");
        self.merge_fraction = f;
        self
    }

    /// Sets the churn rate: the probability that each operand is a
    /// **never-seen key** rather than a revisit. `1.0` is pure insert
    /// churn (every operand fresh — the id table's claim path on every
    /// touch); `0.0` revisits a single key forever. The first operand of a
    /// trace is always fresh.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn fresh_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fresh fraction must be in [0, 1]");
        self.fresh_fraction = f;
        self
    }

    /// Restricts revisits to the `w` most recently introduced keys —
    /// temporal locality: a log segment or crawler frontier mostly
    /// re-mentions what it just introduced. `None` (the default) revisits
    /// uniformly over every key seen so far; `w = 0` is treated as `1`.
    pub fn revisit_window(mut self, w: usize) -> Self {
        self.revisit_window = Some(w.max(1));
        self
    }

    /// Operation count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Materializes the dense-index trace for `seed` (see the module docs
    /// for the two-phase scheme).
    pub fn generate(&self, seed: u64) -> KeyedWorkload<usize> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut seen = 0usize;
        let draw = |rng: &mut ChaCha12Rng, seen: &mut usize| {
            if *seen == 0 || rng.gen_bool(self.fresh_fraction) {
                let k = *seen;
                *seen += 1;
                return k;
            }
            match self.revisit_window {
                Some(w) => {
                    let lo = seen.saturating_sub(w);
                    rng.gen_range(lo..*seen)
                }
                None => rng.gen_range(0..*seen),
            }
        };
        let ops = (0..self.m)
            .map(|_| {
                let a = draw(&mut rng, &mut seen);
                let b = draw(&mut rng, &mut seen);
                if rng.gen_bool(self.merge_fraction) {
                    KeyedOp::Merge(a, b)
                } else {
                    KeyedOp::SameSet(a, b)
                }
            })
            .collect();
        KeyedWorkload { ops, distinct_keys: seen }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_mix() {
        let spec = KeyedSpec::new(5_000).merge_fraction(0.3).fresh_fraction(0.6);
        let a = spec.generate(9);
        assert_eq!(a, spec.generate(9));
        assert_ne!(a, spec.generate(10));
        let f = a.merge_fraction();
        assert!((f - 0.3).abs() < 0.03, "merge fraction = {f}");
    }

    #[test]
    fn indices_are_dense_in_first_appearance_order() {
        let w = KeyedSpec::new(2_000).generate(1);
        let mut next = 0usize;
        for op in &w.ops {
            let (&a, &b) = op.keys();
            for k in [a, b] {
                assert!(k <= next, "index {k} appeared before {next} was introduced");
                if k == next {
                    next += 1;
                }
            }
        }
        assert_eq!(next, w.distinct_keys);
    }

    #[test]
    fn churn_extremes() {
        let all_fresh = KeyedSpec::new(500).fresh_fraction(1.0).generate(2);
        assert_eq!(all_fresh.distinct_keys, 1_000, "every operand must be a new key");
        let no_fresh = KeyedSpec::new(500).fresh_fraction(0.0).generate(3);
        assert_eq!(no_fresh.distinct_keys, 1, "only the forced first operand is fresh");
    }

    #[test]
    fn revisit_window_bounds_recency() {
        let w = KeyedSpec::new(10_000).fresh_fraction(0.5).revisit_window(16).generate(4);
        let mut seen = 0usize;
        for op in &w.ops {
            let (&a, &b) = op.keys();
            for k in [a, b] {
                if k == seen {
                    seen += 1;
                } else {
                    assert!(k + 16 >= seen, "revisit of {k} outside window (seen {seen})");
                }
            }
        }
    }

    #[test]
    fn materializers_preserve_structure() {
        let idx = KeyedSpec::new(1_000).generate(5);
        let sparse = idx.into_sparse_u64(42);
        let strings = idx.into_strings("rec", 42);
        assert_eq!(sparse.len(), idx.len());
        assert_eq!(strings.distinct_keys, idx.distinct_keys);
        // Injective mapping: distinct indices stay distinct keys.
        let mut seen = std::collections::HashSet::new();
        for op in &sparse.ops {
            let (&a, &b) = op.keys();
            seen.insert(a);
            seen.insert(b);
        }
        assert_eq!(seen.len(), sparse.distinct_keys);
        // Sparse means sparse: keys use the high half of the u64 range too.
        assert!(seen.iter().any(|&k| k > u64::MAX / 2));
        // Merge/query structure carries over op-by-op.
        for (a, b) in idx.ops.iter().zip(&strings.ops) {
            assert_eq!(a.is_merge(), b.is_merge());
        }
        assert!(strings.ops[0].keys().0.starts_with("rec-"));
    }

    #[test]
    fn shard_deals_round_robin() {
        let w = KeyedSpec::new(103).generate(6);
        let shards = w.shard(4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 103);
        assert_eq!(shards[0].len(), 26);
        assert_eq!(shards[3].len(), 25);
        assert_eq!(shards[1][0], w.ops[1]);
    }

    #[test]
    fn empty_trace() {
        let w = KeyedSpec::new(0).generate(7);
        assert!(w.is_empty());
        assert_eq!(w.merge_fraction(), 0.0);
        assert_eq!(w.distinct_keys, 0);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn shard_rejects_zero() {
        KeyedSpec::new(4).generate(8).shard(0);
    }
}

//! Workload generation for the disjoint-set-union experiments.
//!
//! The paper proves its bounds over *arbitrary* operation sequences; the
//! experiments need concrete, reproducible ones. This crate provides:
//!
//! * [`Op`] / [`Workload`] — a serializable operation trace (unite /
//!   same-set over `0..n`), with helpers to shard a trace across `p`
//!   threads;
//! * [`WorkloadSpec`] — seeded generators: uniform, Zipf-skewed
//!   ([`Zipf`], our own rejection-inversion sampler), and locality-window
//!   element choice, with a configurable unite : same-set mix;
//! * [`EdgeBatchSpec`] — batched edge arrivals (bursts of endpoint pairs,
//!   optionally Zipf-skewed): the input shape of the batch-ingestion
//!   experiments;
//! * [`KeyedSpec`] / [`KeyedWorkload`] — keyed entity-resolution traces
//!   (string keys, sparse u64 universes, insert-heavy churn): the input
//!   shape of the `KeyedDsu` experiments, which no dense `0..n` generator
//!   can express;
//! * [`binomial`] — the adversarial workload of paper Lemma 5.3 /
//!   Theorem 5.4: a binomial-tree-style union schedule whose resulting
//!   forest has Ω(log k) average depth, followed by a `SameSet` storm that
//!   realizes the Ω(m log(np/m)) lower bound;
//! * JSON trace round-tripping, so any experiment's exact input can be
//!   archived and replayed.
//!
//! # Example
//!
//! ```
//! use dsu_workloads::{WorkloadSpec, ElementDist};
//!
//! let spec = WorkloadSpec::new(1000, 5000).unite_fraction(0.3);
//! let workload = spec.generate(42);
//! assert_eq!(workload.ops.len(), 5000);
//! let shards = workload.shard(4);
//! assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 5000);
//! ```

pub mod batched;
pub mod binomial;
pub mod gen;
pub mod keyed;
pub mod op;
pub mod zipf;

pub use batched::{EdgeBatchSpec, EdgeBatches};
pub use binomial::{binomial_build_ops, lower_bound_workload, LowerBoundWorkload};
pub use gen::{ElementDist, WorkloadSpec};
pub use keyed::{KeyedOp, KeyedSpec, KeyedWorkload};
pub use op::{Op, Workload};
pub use zipf::Zipf;

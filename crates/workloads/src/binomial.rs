//! The lower-bound workload of paper Lemma 5.3 and Theorem 5.4.
//!
//! Lemma 5.3: for any `k` (we require a power of two), a suitable sequence
//! of `k − 1` unites — pair up sets round by round, always calling `Unite`
//! on the current *representatives* — builds a `k`-node tree whose average
//! node depth is `Ω(log k)` even though every find splits. The trick is
//! that representatives stay within depth 2, so the splitting finds can
//! barely compact anything.
//!
//! Theorem 5.4 turns this into the `Ω(m log(np/m))` lower bound: build
//! `n/δ` such trees of size `δ = np/3m`, pick a random node in each, and
//! have all `p` processes do `SameSet(x, x)` storms against those nodes in
//! lockstep. Each query must walk its node's whole depth.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::op::{Op, Workload};

/// Emits the Lemma 5.3 union schedule for one tree over the elements
/// `base .. base + k`, returning the ops and the final representative.
///
/// Invariants maintained (paper's (1)–(3)): after round `i` every tree has
/// `2^i` nodes; representatives have depth ≤ 2; a depth-δ node's subtree
/// has ≤ `2^(i-δ)` nodes.
///
/// # Panics
///
/// Panics unless `k` is a power of two and at least 2.
pub fn binomial_build_ops(base: usize, k: usize) -> (Vec<Op>, usize) {
    assert!(k >= 2 && k.is_power_of_two(), "k must be a power of two >= 2, got {k}");
    let mut ops = Vec::with_capacity(k - 1);
    // reps[j] is the representative of the j-th surviving set.
    let mut reps: Vec<usize> = (base..base + k).collect();
    while reps.len() > 1 {
        let mut next = Vec::with_capacity(reps.len() / 2);
        for pair in reps.chunks(2) {
            ops.push(Op::Unite(pair[0], pair[1]));
            // "Designate either of the representatives" — keep the first.
            next.push(pair[0]);
        }
        reps = next;
    }
    (ops, reps[0])
}

/// The two-phase lower-bound workload of Theorem 5.4 part 2.
#[derive(Debug, Clone)]
pub struct LowerBoundWorkload {
    /// Universe size `n` (a multiple of `delta`).
    pub n: usize,
    /// Tree size `δ`: each of the `n/δ` trees has average depth
    /// `≥ (lg δ)/4`.
    pub delta: usize,
    /// Phase 1 (executed by **one** thread, sequentially): the
    /// binomial-tree builds.
    pub build: Workload,
    /// Phase 2 (executed by **every** thread, ideally in lockstep): one
    /// `SameSet(x, x)` per tree against a random member.
    pub queries: Workload,
}

impl LowerBoundWorkload {
    /// Total operation count across phases, counting the query phase once
    /// per thread.
    pub fn total_ops(&self, p: usize) -> usize {
        self.build.len() + p * self.queries.len()
    }
}

/// Builds the Theorem 5.4 workload: `n/delta` binomial trees of size
/// `delta`, plus a `SameSet(x, x)` query per tree at a uniformly random
/// member (seeded).
///
/// `SameSet(x, x)` is the paper's query of choice: it answers `true` but
/// still pays two full find walks from `x` — `Ω(log δ)` expected steps in
/// these trees. (The early-termination variant would answer in `O(1)`;
/// experiment E5 uses the standard operations.)
///
/// # Panics
///
/// Panics unless `delta` is a power of two ≥ 2 dividing `n`.
pub fn lower_bound_workload(n: usize, delta: usize, seed: u64) -> LowerBoundWorkload {
    assert!(delta >= 2 && delta.is_power_of_two(), "delta must be a power of two >= 2");
    assert!(n.is_multiple_of(delta), "delta must divide n");
    let trees = n / delta;
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut build_ops = Vec::with_capacity(n - trees);
    let mut query_ops = Vec::with_capacity(trees);
    for t in 0..trees {
        let base = t * delta;
        let (ops, _rep) = binomial_build_ops(base, delta);
        build_ops.extend(ops);
        let x = base + rng.gen_range(0..delta);
        query_ops.push(Op::SameSet(x, x));
    }
    LowerBoundWorkload {
        n,
        delta,
        build: Workload::new(n, build_ops),
        queries: Workload::new(n, query_ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_emits_k_minus_one_unites() {
        for k in [2usize, 4, 8, 64, 256] {
            let (ops, rep) = binomial_build_ops(0, k);
            assert_eq!(ops.len(), k - 1);
            assert!(ops.iter().all(|o| o.is_unite()));
            assert_eq!(rep, 0, "first representative survives");
        }
    }

    #[test]
    fn build_respects_base_offset() {
        let (ops, rep) = binomial_build_ops(100, 4);
        assert_eq!(rep, 100);
        for op in &ops {
            let (x, y) = op.operands();
            assert!((100..104).contains(&x) && (100..104).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        binomial_build_ops(0, 6);
    }

    #[test]
    fn rounds_pair_up_representatives() {
        let (ops, _) = binomial_build_ops(0, 8);
        // Round 1: (0,1) (2,3) (4,5) (6,7); round 2: (0,2) (4,6); round 3: (0,4).
        assert_eq!(
            ops,
            vec![
                Op::Unite(0, 1),
                Op::Unite(2, 3),
                Op::Unite(4, 5),
                Op::Unite(6, 7),
                Op::Unite(0, 2),
                Op::Unite(4, 6),
                Op::Unite(0, 4),
            ]
        );
    }

    #[test]
    fn lower_bound_workload_shape() {
        let w = lower_bound_workload(64, 8, 3);
        assert_eq!(w.n, 64);
        assert_eq!(w.build.len(), 64 - 8); // (delta - 1) * trees
        assert_eq!(w.queries.len(), 8);
        // Each query targets its own tree and is a self-same-set.
        for (t, op) in w.queries.ops.iter().enumerate() {
            let (x, y) = op.operands();
            assert_eq!(x, y);
            assert!((t * 8..(t + 1) * 8).contains(&x));
            assert!(!op.is_unite());
        }
        assert_eq!(w.total_ops(4), (64 - 8) + 4 * 8);
    }

    #[test]
    fn lower_bound_workload_is_seed_deterministic() {
        let a = lower_bound_workload(32, 4, 9);
        let b = lower_bound_workload(32, 4, 9);
        assert_eq!(a.queries, b.queries);
        let c = lower_bound_workload(32, 4, 10);
        // Builds are deterministic regardless of seed; queries may differ.
        assert_eq!(a.build, c.build);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn delta_must_divide_n() {
        lower_bound_workload(10, 4, 0);
    }

    /// The heart of Lemma 5.3, verified empirically: replaying the build
    /// schedule against a sequential DSU with randomized linking and
    /// splitting finds leaves a forest of average depth ≥ (lg k)/8 —
    /// splitting never manages to flatten it. (The paper proves ≥ (lg k)/4
    /// for its exact construction; we use half that as a robust test
    /// threshold across seeds.)
    #[test]
    fn built_tree_resists_compaction() {
        use sequential_dsu::{Compaction, Linking, SeqDsu};
        let k = 1024;
        for seed in [1u64, 2, 3] {
            let (ops, _) = binomial_build_ops(0, k);
            let mut dsu = SeqDsu::with_seed(k, Linking::Randomized, Compaction::Splitting, seed);
            for op in &ops {
                let (x, y) = op.operands();
                dsu.unite(x, y);
            }
            // Average depth over the *actual* compressed forest (not the
            // union forest: we want what splitting failed to flatten).
            let total_depth: usize = (0..k).map(|x| dsu.depth_of(x)).sum();
            let avg = total_depth as f64 / k as f64;
            let bound = (k as f64).log2() / 8.0;
            assert!(avg >= bound, "seed {seed}: avg depth {avg:.2} < {bound:.2}");
        }
    }
}

//! Seeded workload generators.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::op::{Op, Workload};
use crate::zipf::Zipf;

/// How operand elements are drawn from `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ElementDist {
    /// Uniformly at random.
    #[default]
    Uniform,
    /// Zipf with the given exponent: element 0 is the most popular. Skew
    /// concentrates contention on few elements (hot roots).
    Zipf(f64),
    /// Both operands within a window of the given width around a uniformly
    /// chosen center — models the spatial locality of grid-like inputs.
    Locality(usize),
    /// Shard-skew: with probability `bias` an operand is drawn from the
    /// *hot block* — the index range of the **first shard** of a sharded
    /// parent store built with this `shards` request (`shards` rounded up
    /// to a power of two and clamped to 256, per-shard capacity
    /// `ceil(n / shards)` rounded up to a power of two, capped at `n` —
    /// the same arithmetic `ShardSpec::with_shards` (incl. its
    /// `MAX_SHARDS` clamp) + `ShardedStore` use) — otherwise
    /// uniformly from the whole universe, so the hot block's total mass is
    /// `bias + (1 - bias) · hot/n`. This is the adversarial workload for
    /// shard placement: `bias → 1` aims all traffic at one shard, while
    /// `bias → 0` (or `shards = 1`, whose single "block" is the whole
    /// universe) degenerates to uniform traffic.
    ShardSkew {
        /// Requested shard count (rounded up to a power of two, exactly
        /// like `ShardSpec::with_shards`; `0` is treated as `1`).
        shards: usize,
        /// Probability an operand lands in the first shard's block
        /// (clamped to `[0, 1]`).
        bias: f64,
    },
}

/// Draws operand pairs from `0..n` per an [`ElementDist`] — the sampling
/// core shared by [`WorkloadSpec`] and the batched edge generator
/// ([`EdgeBatchSpec`](crate::EdgeBatchSpec)).
pub(crate) struct PairSampler {
    n: usize,
    dist: ElementDist,
    zipf: Option<Zipf>,
}

impl PairSampler {
    pub(crate) fn new(n: usize, dist: ElementDist) -> Self {
        let zipf = match dist {
            ElementDist::Zipf(s) => Some(Zipf::new(n as u64, s)),
            _ => None,
        };
        PairSampler { n, dist, zipf }
    }

    pub(crate) fn draw(&self, rng: &mut ChaCha12Rng) -> (usize, usize) {
        match self.dist {
            ElementDist::Uniform => (rng.gen_range(0..self.n), rng.gen_range(0..self.n)),
            ElementDist::Zipf(_) => {
                let zipf = self.zipf.as_ref().expect("zipf sampler prepared");
                // Zipf yields 1..=n; element k-1 gets mass k^(-s).
                ((zipf.sample(rng) - 1) as usize, (zipf.sample(rng) - 1) as usize)
            }
            ElementDist::Locality(window) => {
                let w = window.max(1).min(self.n);
                let center = rng.gen_range(0..self.n);
                let lo = center.saturating_sub(w / 2);
                let hi = (lo + w).min(self.n);
                (rng.gen_range(lo..hi), rng.gen_range(lo..hi))
            }
            ElementDist::ShardSkew { shards, bias } => {
                // Hot block = the sharded store's first shard for this
                // request: shard count rounded up to a power of two and
                // clamped to 256 (mirroring ShardSpec::with_shards and
                // its MAX_SHARDS — kept in sync by the cross-crate test
                // in dsu-bench rather than a dependency edge), per-shard
                // capacity ceil(n / shards) rounded up to a power of two
                // (as ShardedStore does), capped at n (a one-shard store
                // holds everything). The previous ceil(n / shards)-sized
                // block silently missed the store's split for
                // non-power-of-two requests.
                let shards = shards.max(1).next_power_of_two().min(256);
                let hot = self.n.div_ceil(shards).next_power_of_two().min(self.n);
                let bias = bias.clamp(0.0, 1.0);
                let one = |rng: &mut ChaCha12Rng| {
                    if rng.gen_bool(bias) {
                        rng.gen_range(0..hot)
                    } else {
                        rng.gen_range(0..self.n)
                    }
                };
                (one(rng), one(rng))
            }
        }
    }
}

/// A recipe for a random [`Workload`]: universe size, op count, unite
/// fraction, and operand distribution. Same spec + same seed = same trace.
///
/// # Example
///
/// ```
/// use dsu_workloads::{WorkloadSpec, ElementDist};
///
/// let w = WorkloadSpec::new(100, 1000)
///     .unite_fraction(0.5)
///     .element_dist(ElementDist::Zipf(1.1))
///     .generate(7);
/// assert_eq!(w.n, 100);
/// assert_eq!(w.len(), 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    n: usize,
    m: usize,
    unite_fraction: f64,
    dist: ElementDist,
}

impl WorkloadSpec {
    /// A spec for `m` operations over `0..n`; defaults: 50% unites,
    /// uniform operands.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` and `m > 0` (no elements to operate on).
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 || m == 0, "cannot generate ops over an empty universe");
        WorkloadSpec { n, m, unite_fraction: 0.5, dist: ElementDist::Uniform }
    }

    /// Sets the fraction of operations that are unites (rest are
    /// same-sets).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn unite_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "unite fraction must be in [0, 1]");
        self.unite_fraction = f;
        self
    }

    /// Sets the operand distribution.
    pub fn element_dist(mut self, dist: ElementDist) -> Self {
        self.dist = dist;
        self
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Operation count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Materializes the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let sampler = PairSampler::new(self.n, self.dist);
        let mut ops = Vec::with_capacity(self.m);
        for _ in 0..self.m {
            let (x, y) = sampler.draw(&mut rng);
            let op =
                if rng.gen_bool(self.unite_fraction) { Op::Unite(x, y) } else { Op::SameSet(x, y) };
            ops.push(op);
        }
        Workload::new(self.n, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let spec = WorkloadSpec::new(64, 500).unite_fraction(0.3);
        assert_eq!(spec.generate(9), spec.generate(9));
        assert_ne!(spec.generate(9), spec.generate(10));
    }

    #[test]
    fn unite_fraction_is_respected() {
        let w = WorkloadSpec::new(100, 20_000).unite_fraction(0.25).generate(1);
        let f = w.unite_fraction();
        assert!((f - 0.25).abs() < 0.02, "fraction = {f}");
        let all = WorkloadSpec::new(10, 100).unite_fraction(1.0).generate(2);
        assert_eq!(all.unite_fraction(), 1.0);
        let none = WorkloadSpec::new(10, 100).unite_fraction(0.0).generate(3);
        assert_eq!(none.unite_fraction(), 0.0);
    }

    #[test]
    fn operands_in_range_for_all_dists() {
        for dist in [
            ElementDist::Uniform,
            ElementDist::Zipf(1.3),
            ElementDist::Locality(8),
            ElementDist::Locality(0),      // degenerate window
            ElementDist::Locality(10_000), // over-wide window
            ElementDist::ShardSkew { shards: 8, bias: 0.9 },
            ElementDist::ShardSkew { shards: 0, bias: 2.0 }, // degenerate: clamped
        ] {
            let w = WorkloadSpec::new(37, 2_000).element_dist(dist).generate(4);
            for op in &w.ops {
                let (x, y) = op.operands();
                assert!(x < 37 && y < 37, "{dist:?} emitted {op:?}");
            }
        }
    }

    #[test]
    fn zipf_dist_is_skewed() {
        let w = WorkloadSpec::new(1000, 30_000).element_dist(ElementDist::Zipf(1.5)).generate(5);
        let hits_0 = w.ops.iter().filter(|o| o.operands().0 == 0).count();
        let hits_500 = w.ops.iter().filter(|o| o.operands().0 == 500).count();
        assert!(hits_0 > 20 * (hits_500 + 1), "0:{hits_0} vs 500:{hits_500}");
    }

    #[test]
    fn shard_skew_dist_concentrates_on_block_zero() {
        let n = 1024;
        let shards = 8;
        let hot = n / shards; // 128
        let w = WorkloadSpec::new(n, 20_000)
            .element_dist(ElementDist::ShardSkew { shards, bias: 0.9 })
            .generate(11);
        let in_hot =
            w.ops.iter().filter(|o| o.operands().0 < hot).count() as f64 / w.ops.len() as f64;
        // 0.9 directly + 0.1 * (1/8) uniformly ≈ 0.9125.
        assert!((0.87..0.95).contains(&in_hot), "hot-block fraction = {in_hot}");

        // bias = 1/shards degenerates to (per-block) uniform traffic.
        let u = WorkloadSpec::new(n, 20_000)
            .element_dist(ElementDist::ShardSkew { shards, bias: 1.0 / shards as f64 })
            .generate(12);
        let in_hot_u =
            u.ops.iter().filter(|o| o.operands().0 < hot).count() as f64 / u.ops.len() as f64;
        // 1/8 + 7/8 * 1/8 ≈ 0.234.
        assert!((0.20..0.27).contains(&in_hot_u), "uniformized fraction = {in_hot_u}");
    }

    /// The degenerate corners the doc promises: one shard means the "hot
    /// block" is the whole universe (bias is irrelevant), `bias = 0.0` is
    /// uniform traffic, `bias = 1.0` pins every operand inside the block.
    #[test]
    fn shard_skew_degenerate_cases() {
        let n = 1024;
        // shards = 1: block 0 is the whole universe, so even bias = 1.0
        // must cover high indices (a single-shard store cannot be skewed).
        let one = WorkloadSpec::new(n, 20_000)
            .element_dist(ElementDist::ShardSkew { shards: 1, bias: 1.0 })
            .generate(21);
        let in_top_half = one.ops.iter().filter(|o| o.operands().0 >= n / 2).count() as f64
            / one.ops.len() as f64;
        assert!((0.4..0.6).contains(&in_top_half), "shards=1 must stay uniform: {in_top_half}");

        // bias = 0.0: the hot branch never fires — uniform regardless of
        // the shard count.
        let cold = WorkloadSpec::new(n, 20_000)
            .element_dist(ElementDist::ShardSkew { shards: 8, bias: 0.0 })
            .generate(22);
        let in_block = cold.ops.iter().filter(|o| o.operands().0 < n / 8).count() as f64
            / cold.ops.len() as f64;
        assert!((0.10..0.16).contains(&in_block), "bias=0 must be uniform: {in_block}");

        // bias = 1.0: every operand lands inside the first shard's block.
        let all_hot = WorkloadSpec::new(n, 5_000)
            .element_dist(ElementDist::ShardSkew { shards: 8, bias: 1.0 })
            .generate(23);
        for op in &all_hot.ops {
            let (x, y) = op.operands();
            assert!(x < n / 8 && y < n / 8, "bias=1 operand escaped the block: {op:?}");
        }
    }

    /// Non-power-of-two shard requests follow the sharded store's actual
    /// split: `shards` rounds up to a power of two and the block size is
    /// `ceil(n / shards)` rounded up to a power of two (capped at `n`) —
    /// the size of the store's first shard, not the `ceil(n / shards)`
    /// block the old generator used.
    #[test]
    fn shard_skew_matches_store_split_for_non_pow2_shards() {
        // n = 1000, shards = 3 -> 4 shards, capacity ceil(1000/4) = 250 ->
        // 256: all bias-directed mass lands in [0, 256).
        let w = WorkloadSpec::new(1000, 5_000)
            .element_dist(ElementDist::ShardSkew { shards: 3, bias: 1.0 })
            .generate(31);
        let max_seen = w.ops.iter().map(|o| o.operands().0.max(o.operands().1)).max().unwrap();
        assert!(max_seen < 256, "operand {max_seen} outside the store's first shard");
        // And the block is genuinely reachable to its edge over 10k draws.
        assert!(max_seen >= 200, "block suspiciously under-covered: max {max_seen}");

        // Small universe: capacity rounds past n and is capped — shards=1
        // over n=10 draws the whole universe.
        let tiny = WorkloadSpec::new(10, 2_000)
            .element_dist(ElementDist::ShardSkew { shards: 1, bias: 1.0 })
            .generate(32);
        assert!(tiny.ops.iter().any(|o| o.operands().0 == 9), "cap at n lost the top element");
    }

    /// Requests above the store's 256-shard clamp follow the clamp: the
    /// hot block is the first shard of a *256*-shard store, not of the
    /// raw request. (n = 4096, shards = 512 -> clamp 256 -> capacity 16;
    /// the unclamped request would give capacity 8.)
    #[test]
    fn shard_skew_clamps_like_shard_spec() {
        let w = WorkloadSpec::new(4096, 20_000)
            .element_dist(ElementDist::ShardSkew { shards: 512, bias: 1.0 })
            .generate(41);
        let max_seen = w.ops.iter().map(|o| o.operands().0.max(o.operands().1)).max().unwrap();
        assert!(max_seen < 16, "operand {max_seen} outside the clamped first shard");
        assert!(max_seen >= 8, "block stops at the unclamped size: max {max_seen}");
    }

    #[test]
    fn locality_dist_keeps_pairs_close() {
        let w =
            WorkloadSpec::new(10_000, 5_000).element_dist(ElementDist::Locality(16)).generate(6);
        for op in &w.ops {
            let (x, y) = op.operands();
            assert!(x.abs_diff(y) <= 16, "pair too far: {op:?}");
        }
    }

    #[test]
    fn empty_workload() {
        let w = WorkloadSpec::new(0, 0).generate(7);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn nonempty_ops_need_elements() {
        WorkloadSpec::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_fraction_rejected() {
        WorkloadSpec::new(4, 4).unite_fraction(1.5);
    }

    #[test]
    fn accessors() {
        let spec = WorkloadSpec::new(8, 16);
        assert_eq!(spec.n(), 8);
        assert_eq!(spec.m(), 16);
        assert_eq!(ElementDist::default(), ElementDist::Uniform);
    }
}

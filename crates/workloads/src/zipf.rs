//! A Zipf-distributed integer sampler.
//!
//! Skewed element popularity is the realistic regime for union-find
//! workloads (graph degrees, storage allocators, symbol tables), and it
//! maximizes contention on the high-degree elements — exactly where the
//! concurrent algorithm's CAS retries show up. We implement the
//! *rejection-inversion* sampler of Hörmann & Derflinger (1996): `O(1)`
//! expected time per sample, no `O(n)` tables, any exponent `s >= 0`.
//!
//! `P(X = k) ∝ k^(-s)` for `k ∈ 1..=n`; `s = 0` degenerates to the uniform
//! distribution and `s → ∞` to the point mass at 1.

use rand::Rng;

/// Rejection-inversion Zipf sampler over `1..=n` with exponent `s`.
///
/// # Example
///
/// ```
/// use dsu_workloads::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.2);
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&k));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf requires a non-empty support");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and >= 0");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf { n, s, h_x1, h_n, threshold }
    }

    /// Number of support points.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            // u is uniform in (h_x1, h_n]; note h_n < h_x1 numerically
            // because hIntegral is decreasing-ish in our parameterization —
            // follow the reference formulation exactly.
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k_int = k as u64;
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k_int;
            }
        }
    }

    /// The unnormalized probability mass `k^(-s)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn unnormalized_pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k), "k out of support");
        (k as f64).powf(-self.s)
    }
}

/// `H(x) = ∫ t^(-s) dt`, normalized so the sampler's algebra works:
/// `(x^(1-s) - 1) / (1 - s)` for `s != 1`, `ln x` for `s = 1`, computed in
/// the numerically stable `helper * ln x` form.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(-s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard from the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `ln(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(e^x - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn histogram(n: u64, s: f64, samples: usize, seed: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..samples {
            let k = zipf.sample(&mut rng);
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn support_is_respected() {
        let zipf = Zipf::new(10, 1.5);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let n = 16;
        let counts = histogram(n, 0.0, 160_000, 2);
        let expected = 160_000.0 / n as f64;
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let c = count as f64;
            assert!(
                (c - expected).abs() < 0.1 * expected,
                "count[{k}] = {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn frequencies_match_pmf_for_s1() {
        // s = 1 (the ln special case): compare empirical frequencies to the
        // normalized harmonic pmf within 10% on the popular values.
        let n = 50u64;
        let s = 1.0;
        let samples = 400_000;
        let counts = histogram(n, s, samples, 3);
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in 1..=5u64 {
            let expected = samples as f64 * (k as f64).powf(-s) / z;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < 0.1 * expected,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn frequencies_match_pmf_for_skewed() {
        let n = 100u64;
        let s = 1.7;
        let samples = 300_000;
        let counts = histogram(n, s, samples, 4);
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in [1u64, 2, 3, 10] {
            let expected = samples as f64 * (k as f64).powf(-s) / z;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < 0.12 * expected + 30.0,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn monotone_counts_under_skew() {
        let counts = histogram(32, 1.2, 100_000, 5);
        assert!(counts[1] > counts[4]);
        assert!(counts[4] > counts[16]);
    }

    #[test]
    fn single_point_support() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn accessors() {
        let zipf = Zipf::new(9, 0.5);
        assert_eq!(zipf.n(), 9);
        assert_eq!(zipf.exponent(), 0.5);
        assert!((zipf.unnormalized_pmf(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn zero_support_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_exponent_rejected() {
        Zipf::new(5, -0.1);
    }

    #[test]
    fn helpers_are_stable_near_zero() {
        assert!((helper1(1e-12) - 1.0).abs() < 1e-9);
        assert!((helper2(1e-12) - 1.0).abs() < 1e-9);
        assert!((helper1(0.5) - (1.5f64.ln() / 0.5)).abs() < 1e-12);
        assert!((helper2(0.5) - (0.5f64.exp_m1() / 0.5)).abs() < 1e-12);
    }
}

//! The threaded measurement driver.
//!
//! Shards a [`Workload`] across OS threads, releases them through a
//! barrier, and reports wall-clock time plus (for the instrumented variant)
//! the merged per-thread [`OpStats`] — total work measured exactly as the
//! paper defines it, with zero shared counters on the hot path.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use concurrent_dsu::{ConcurrentUnionFind, Dsu, DsuStore, FindPolicy, LinkPolicy, OpStats};
use dsu_workloads::{Op, Workload};

/// What one measured run produced.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Wall-clock time from barrier release to last thread done.
    pub elapsed: Duration,
    /// Operations executed (all threads).
    pub ops: u64,
    /// Merged work counters (instrumented runs only).
    pub stats: Option<OpStats>,
    /// The largest find-loop iteration count any single operation needed
    /// (instrumented runs only) — the Theorem 4.3 "steps per operation"
    /// statistic.
    pub max_op_iters: u64,
}

impl RunMetrics {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

fn apply_plain<D: ConcurrentUnionFind + ?Sized>(dsu: &D, op: Op) {
    match op {
        Op::Unite(x, y) => {
            dsu.unite(x, y);
        }
        Op::SameSet(x, y) => {
            dsu.same_set(x, y);
        }
    }
}

/// Runs `workload` sharded over `threads` threads against any concurrent
/// union-find; wall-clock only (works for the baselines too).
///
/// # Panics
///
/// Panics if `threads == 0` or the workload universe exceeds `dsu.len()`.
pub fn run_shards<D: ConcurrentUnionFind + ?Sized>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> RunMetrics {
    assert!(threads > 0, "need at least one thread");
    assert!(dsu.len() >= workload.n, "universe too small for workload");
    let shards = workload.shard(threads);
    let barrier = Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for &op in shard {
                    apply_plain(dsu, op);
                }
            });
        }
        // Timestamp before releasing the barrier: once it opens, this
        // thread may be descheduled while workers run (oversubscribed
        // hosts), which would deflate an after-the-wait timestamp.
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    RunMetrics {
        elapsed: started.elapsed(),
        ops: workload.len() as u64,
        stats: None,
        max_op_iters: 0,
    }
}

/// Like [`run_shards`], but every worker thread routes its operations
/// through its own hot-root cache session ([`Dsu::cached`]) — the cached
/// contender of the e04 speedup table. Results are identical to the plain
/// run (the cache layer is verdict-preserving); only the work per find
/// changes.
///
/// # Panics
///
/// Panics if `threads == 0` or the workload universe exceeds `dsu.len()`.
pub fn run_shards_cached<F: FindPolicy, S: DsuStore, L: LinkPolicy>(
    dsu: &Dsu<F, S, L>,
    workload: &Workload,
    threads: usize,
) -> RunMetrics {
    assert!(threads > 0, "need at least one thread");
    assert!(dsu.len() >= workload.n, "universe too small for workload");
    let shards = workload.shard(threads);
    let barrier = Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                let mut session = dsu.cached();
                barrier.wait();
                for &op in shard {
                    match op {
                        Op::Unite(x, y) => {
                            session.unite(x, y);
                        }
                        Op::SameSet(x, y) => {
                            session.same_set(x, y);
                        }
                    }
                }
            });
        }
        // Same pre-release timestamp rationale as run_shards.
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    RunMetrics {
        elapsed: started.elapsed(),
        ops: workload.len() as u64,
        stats: None,
        max_op_iters: 0,
    }
}

/// How many consecutive `Unite` ops [`run_shards_planned`] accumulates
/// before flushing them as one planned batch: big enough that the
/// planner's radix buckets see real locality, small enough that a mixed
/// workload's queries don't starve behind a giant buffer.
const PLANNED_BURST: usize = 256;

/// Like [`run_shards`], but every worker thread accumulates consecutive
/// `Unite` operations into a burst buffer and ingests each burst through
/// the ingestion planner
/// ([`ConcurrentUnionFind::unite_batch_planned`]: intra-batch dedup +
/// block-local radix buckets) — the planned contender of the e04 speedup
/// table and the criterion throughput group. A `SameSet` op flushes the
/// worker's pending burst first, so every query still observes all the
/// unites that precede it in the worker's program order; the final
/// partition is identical to the plain run (set union is confluent).
///
/// # Panics
///
/// Panics if `threads == 0` or the workload universe exceeds `dsu.len()`.
pub fn run_shards_planned<D: ConcurrentUnionFind + ?Sized>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> RunMetrics {
    assert!(threads > 0, "need at least one thread");
    assert!(dsu.len() >= workload.n, "universe too small for workload");
    let shards = workload.shard(threads);
    let barrier = Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                let mut burst: Vec<(usize, usize)> = Vec::with_capacity(PLANNED_BURST);
                barrier.wait();
                for &op in shard {
                    match op {
                        Op::Unite(x, y) => {
                            burst.push((x, y));
                            if burst.len() == PLANNED_BURST {
                                dsu.unite_batch_planned(&burst);
                                burst.clear();
                            }
                        }
                        Op::SameSet(x, y) => {
                            if !burst.is_empty() {
                                dsu.unite_batch_planned(&burst);
                                burst.clear();
                            }
                            dsu.same_set(x, y);
                        }
                    }
                }
                if !burst.is_empty() {
                    dsu.unite_batch_planned(&burst);
                }
            });
        }
        // Same pre-release timestamp rationale as run_shards.
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    RunMetrics {
        elapsed: started.elapsed(),
        ops: workload.len() as u64,
        stats: None,
        max_op_iters: 0,
    }
}

/// Instrumented run against the Jayanti–Tarjan structure: each thread
/// counts its own work into a private [`OpStats`]; counters are merged
/// after the run. `early` selects the Section 6 early-termination
/// operations. Generic over the full variant plane — any (find × link)
/// pair on any fixed-universe layout — so the variant experiments (e03,
/// `variants_ab`) drive every point through one code path.
///
/// # Panics
///
/// Panics if `threads == 0` or the workload universe exceeds `dsu.len()`.
pub fn run_shards_instrumented<F: FindPolicy, S: DsuStore, L: LinkPolicy>(
    dsu: &Dsu<F, S, L>,
    workload: &Workload,
    threads: usize,
    early: bool,
) -> RunMetrics {
    assert!(threads > 0, "need at least one thread");
    assert!(dsu.len() >= workload.n, "universe too small for workload");
    let shards = workload.shard(threads);
    let barrier = Barrier::new(threads + 1);
    let (elapsed, merged, max_iters) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for shard in &shards {
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut stats = OpStats::default();
                let mut max_iters = 0u64;
                for &op in shard {
                    let before = stats.loop_iters;
                    match (op, early) {
                        (Op::Unite(x, y), false) => {
                            dsu.unite_with(x, y, &mut stats);
                        }
                        (Op::SameSet(x, y), false) => {
                            dsu.same_set_with(x, y, &mut stats);
                        }
                        (Op::Unite(x, y), true) => {
                            dsu.unite_early_with(x, y, &mut stats);
                        }
                        (Op::SameSet(x, y), true) => {
                            dsu.same_set_early_with(x, y, &mut stats);
                        }
                    }
                    max_iters = max_iters.max(stats.loop_iters - before);
                }
                (stats, max_iters)
            }));
        }
        // Same pre-release timestamp rationale as run_shards.
        let started = Instant::now();
        barrier.wait();
        let mut merged = OpStats::default();
        let mut max_iters = 0u64;
        for h in handles {
            let (stats, mx) = h.join().expect("worker panicked");
            merged.merge(&stats);
            max_iters = max_iters.max(mx);
        }
        (started.elapsed(), merged, max_iters)
    });
    RunMetrics { elapsed, ops: workload.len() as u64, stats: Some(merged), max_op_iters: max_iters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concurrent_dsu::TwoTrySplit;
    use dsu_workloads::WorkloadSpec;

    #[test]
    fn plain_run_executes_everything() {
        let w = WorkloadSpec::new(256, 4000).unite_fraction(1.0).generate(1);
        let dsu: Dsu = Dsu::new(256);
        let m = run_shards(&dsu, &w, 4);
        assert_eq!(m.ops, 4000);
        assert!(m.elapsed > Duration::ZERO);
        assert!(m.stats.is_none());
        // 4000 random unites on 256 elements almost surely connect all.
        assert_eq!(dsu.set_count(), 1);
        assert!(m.mops() > 0.0);
    }

    #[test]
    fn cached_run_matches_plain_results() {
        let w = WorkloadSpec::new(256, 4000).unite_fraction(0.6).generate(5);
        let plain: Dsu = Dsu::new(256);
        run_shards(&plain, &w, 2);
        let cached: Dsu = Dsu::new(256);
        let m = run_shards_cached(&cached, &w, 2);
        assert_eq!(m.ops, 4000);
        assert!(m.elapsed > Duration::ZERO);
        assert_eq!(cached.set_count(), plain.set_count());
        assert_eq!(cached.labels_snapshot(), plain.labels_snapshot());
    }

    #[test]
    fn planned_run_matches_plain_results() {
        let w = WorkloadSpec::new(256, 4000).unite_fraction(0.6).generate(5);
        let plain: Dsu = Dsu::new(256);
        run_shards(&plain, &w, 2);
        let planned: Dsu = Dsu::new(256);
        let m = run_shards_planned(&planned, &w, 2);
        assert_eq!(m.ops, 4000);
        assert!(m.elapsed > Duration::ZERO);
        assert_eq!(planned.set_count(), plain.set_count());
        assert_eq!(planned.labels_snapshot(), plain.labels_snapshot());
        // Single-threaded too (flush boundaries differ; the partition
        // must not).
        let single: Dsu = Dsu::new(256);
        run_shards_planned(&single, &w, 1);
        assert_eq!(single.labels_snapshot(), plain.labels_snapshot());
    }

    #[test]
    fn instrumented_run_counts_ops_exactly() {
        let w = WorkloadSpec::new(128, 2000).generate(2);
        for early in [false, true] {
            let dsu: Dsu<TwoTrySplit> = Dsu::new(128);
            let m = run_shards_instrumented(&dsu, &w, 3, early);
            let stats = m.stats.expect("instrumented");
            assert_eq!(stats.ops, 2000, "early={early}");
            assert!(m.max_op_iters > 0);
            assert!(stats.loop_iters >= stats.ops || early);
        }
    }

    #[test]
    fn single_thread_instrumented_matches_sequential_semantics() {
        let w = WorkloadSpec::new(64, 500).generate(3);
        let dsu: Dsu<TwoTrySplit> = Dsu::new(64);
        let m = run_shards_instrumented(&dsu, &w, 1, false);
        let stats = m.stats.unwrap();
        // One thread ⇒ no CAS can fail.
        assert_eq!(stats.compact_cas_fail, 0);
        assert_eq!(stats.links_fail, 0);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn undersized_universe_rejected() {
        let w = WorkloadSpec::new(64, 10).generate(0);
        let dsu: Dsu = Dsu::new(32);
        run_shards(&dsu, &w, 1);
    }
}

//! Aligned-text tables (the "paper rows") with optional CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use dsu_harness::Table;
///
/// let mut t = Table::new(&["p", "Mops/s", "speedup"]);
/// t.row(&["1", "12.1", "1.00"]);
/// t.row(&["2", "23.0", "1.90"]);
/// let s = t.render();
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns and a rule under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Prints [`render`](Table::render) to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV form (headers + rows, comma-separated, no quoting — cells are
    /// numeric or simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path` (used by the `--csv` option of every bin).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with 2 decimals (the tables' default precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("value"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines[2].len(), lines[3].len(), "alignment");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00"); // banker's-ish: format! rounds
        assert_eq!(f3(2.0 / 3.0), "0.667");
    }

    #[test]
    fn csv_file_write() {
        let mut t = Table::new(&["x"]);
        t.row(&["9"]);
        let path = std::env::temp_dir().join("dsu_harness_table_test.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n9\n");
        let _ = std::fs::remove_file(path);
    }
}

//! Minimal `--key value` argument parsing for the experiment binaries.
//!
//! No external CLI crate: experiments need exactly "override a few numeric
//! parameters and maybe a CSV path", and this keeps the dependency set to
//! the pre-approved list.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs with typed, defaulted getters.
///
/// # Example
///
/// ```
/// use dsu_harness::Args;
///
/// let args = Args::from_iter(["--n", "1024", "--quick", "true"]);
/// assert_eq!(args.usize("n", 64), 1024);
/// assert_eq!(args.usize("reps", 5), 5);
/// assert!(args.flag("quick"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process's real arguments.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (a `--key` without a value, or a bare
    /// token), to fail fast on typos.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from any iterator of tokens (tests use string slices).
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    // Not the std trait: this parses `--key value` pairs and panics on
    // malformed input, which `FromIterator` must not.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut map = BTreeMap::new();
        let mut it = tokens.into_iter().map(Into::into);
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {tok:?}"))
                .to_string();
            let value = it.next().unwrap_or_else(|| panic!("missing value for --{key}"));
            map.insert(key, value);
        }
        Args { map }
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// `usize` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics if present but unparsable.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
        })
    }

    /// `u64` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics if present but unparsable.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
        })
    }

    /// `f64` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics if present but unparsable.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
        })
    }

    /// Boolean flag: `--key true|1|yes` (absent ⇒ false).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Thread counts to sweep: `--threads 1,2,4` or a default doubling
    /// ladder capped at the machine's parallelism.
    pub fn thread_ladder(&self) -> Vec<usize> {
        if let Some(spec) = self.get("threads") {
            return spec
                .split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad thread count {s:?}")))
                .collect();
        }
        let max = std::thread::available_parallelism().map_or(8, |n| n.get());
        let mut ladder = vec![1];
        while *ladder.last().unwrap() * 2 <= max {
            ladder.push(ladder.last().unwrap() * 2);
        }
        ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_defaults() {
        let a = Args::from_iter(["--n", "42", "--theta", "1.5", "--csv", "/tmp/x.csv"]);
        assert_eq!(a.usize("n", 7), 42);
        assert_eq!(a.usize("m", 7), 7);
        assert_eq!(a.f64("theta", 0.0), 1.5);
        assert_eq!(a.get("csv"), Some("/tmp/x.csv"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn explicit_thread_list() {
        let a = Args::from_iter(["--threads", "1,2, 8"]);
        assert_eq!(a.thread_ladder(), vec![1, 2, 8]);
    }

    #[test]
    fn default_thread_ladder_doubles() {
        let ladder = Args::default().thread_ladder();
        assert_eq!(ladder[0], 1);
        for w in ladder.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn bare_token_rejected() {
        Args::from_iter(["oops"]);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_value_rejected() {
        Args::from_iter(["--n"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_int_rejected() {
        let a = Args::from_iter(["--n", "banana"]);
        a.usize("n", 0);
    }
}

//! Experiment harness for the Jayanti–Tarjan reproduction.
//!
//! The paper is a theory paper — no tables, no figures — so the
//! "evaluation" this workspace regenerates is the set of quantitative
//! claims made by its theorems and remarks. Each claim has one binary in
//! `src/bin/` (see `DESIGN.md` §5 for the full index):
//!
//! | bin | paper claim |
//! |-----|-------------|
//! | `e01_height` | Cor. 4.2.1 / Thm 4.3: O(log n) forest height w.h.p. |
//! | `e02_work_vs_p` | Thm 5.1: work ≈ m(α(n, m/np) + log(np/m + 1)) |
//! | `e03_variants` | Thm 5.1 vs 5.2 vs no compaction |
//! | `e04_speedup` | near-linear speedup; AW / lock baselines |
//! | `e05_lower_bound` | Lemma 5.3 + Thm 5.4 lockstep storm |
//! | `e06_lockstep` | §3 halving⇔splitting simulation |
//! | `e07_sequential` | §2's twelve sequential variants |
//! | `e08_linearizability` | Lemma 3.2 under adversarial schedules |
//! | `e09_applications` | intro: CC, MST, percolation |
//! | `e10_growable` | §3 remark + §7: MakeSet / on-the-fly ids |
//! | `e11_independence` | assumption (∗) ablation |
//! | `e12_cas_anatomy` | CAS retry anatomy (the cost AW ignored) |
//!
//! Run any of them with
//! `cargo run --release -p dsu-harness --bin e01_height -- [--key value]…`;
//! every binary accepts `--quick true` for a fast smoke configuration and
//! prints an aligned table (plus CSV when `--csv path` is given).
//!
//! The library half of this crate is the shared machinery: a threaded
//! [`driver`], table rendering ([`table::Table`]), and tiny argument
//! parsing ([`args::Args`]).

pub mod args;
pub mod driver;
pub mod table;

pub use args::Args;
pub use driver::{
    run_shards, run_shards_cached, run_shards_instrumented, run_shards_planned, RunMetrics,
};
pub use table::Table;

/// Mean of a slice (NaN on empty input).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 0.01, "sd = {sd}");
    }
}

//! **E2 — Theorem 5.1: two-try splitting does
//! Θ(m(α(n, m/np) + log(np/m + 1))) expected total work.**
//!
//! Fix `n` and `m`, sweep the thread count `p`, and measure the total
//! find-loop iterations per operation (the unit the theorem's potential
//! argument charges). The prediction grows like `α + log(np/m + 1)`:
//! nearly flat in the operation-rich regime (`m ≫ np`) and logarithmic in
//! `p` once `np` passes `m`. The table prints measured work next to the
//! predicted curve; absolute constants are implementation-specific, the
//! *shape* (ratio column stable) is the reproduced claim.
//!
//! Usage: `--n 262144 --m 524288 --reps 3 --quick true --csv out.csv`

use concurrent_dsu::{Dsu, TwoTrySplit};
use dsu_harness::{mean, run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::WorkloadSpec;
use sequential_dsu::two_try_work_bound;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 18 });
    let m = args.usize("m", 2 * n);
    let reps = args.usize("reps", if quick { 2 } else { 3 });
    let ladder = args.thread_ladder();

    println!("E2: two-try splitting work vs p  (n = {n}, m = {m}, {reps} seeds)");
    println!("paper: E[total work] = Θ(m(α(n, m/np) + log(np/m + 1)))  [Thm 5.1]\n");

    let mut table = Table::new(&[
        "p",
        "iters/op",
        "reads/op",
        "predicted α+log",
        "measured/predicted",
        "max single-op iters",
    ]);
    for &p in &ladder {
        let mut iters = Vec::new();
        let mut reads = Vec::new();
        let mut max_single = 0u64;
        for rep in 0..reps {
            let seed = 0xE2_000 + rep as u64;
            let dsu: Dsu<TwoTrySplit> = Dsu::with_seed(n, seed);
            let w = WorkloadSpec::new(n, m).unite_fraction(0.5).generate(seed ^ 0x51);
            let metrics = run_shards_instrumented(&dsu, &w, p, false);
            let stats = metrics.stats.expect("instrumented");
            iters.push(stats.loop_iters as f64 / m as f64);
            reads.push(stats.reads as f64 / m as f64);
            max_single = max_single.max(metrics.max_op_iters);
        }
        let predicted = two_try_work_bound(n as u64, m as u64, p as u64);
        let measured = mean(&iters);
        table.row(&[
            p.to_string(),
            f2(measured),
            f2(mean(&reads)),
            f2(predicted),
            f2(measured / predicted),
            max_single.to_string(),
        ]);
    }
    table.print();
    println!("\nexpected shape: measured/predicted stays a stable constant across p;");
    println!("iters/op grows only once np exceeds m (the log(np/m + 1) term).");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

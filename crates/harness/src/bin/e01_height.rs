//! **E1 — Corollary 4.2.1 / Theorem 4.3: the union forest is O(log n) high
//! w.h.p.**
//!
//! For each universe size `n`, run `m = 2n` random unites on `threads`
//! threads with randomized linking and two-try splitting, then measure the
//! *union forest* (links only, compaction ignored). The paper predicts
//! height `≤ c·lg n` with probability `≥ 1 − 1/n`; the table reports the
//! measured height, its ratio to `lg n` (should be a small constant,
//! stable as `n` grows), and the mean node depth.
//!
//! Usage: `--min-exp 10 --max-exp 20 --reps 3 --threads-per-run 8 --quick true --csv out.csv`

use concurrent_dsu::Dsu;
use dsu_harness::{mean, run_shards, table::f2, Args, Table};
use dsu_workloads::WorkloadSpec;

fn forest_height_and_mean_depth(parent: &[usize]) -> (usize, f64) {
    let mut depth = vec![usize::MAX; parent.len()];
    let mut tallest = 0usize;
    let mut total = 0usize;
    for start in 0..parent.len() {
        let mut path = Vec::new();
        let mut u = start;
        while depth[u] == usize::MAX && parent[u] != u {
            path.push(u);
            u = parent[u];
        }
        let mut d = if parent[u] == u && depth[u] == usize::MAX {
            depth[u] = 0;
            0
        } else {
            depth[u]
        };
        for &node in path.iter().rev() {
            d += 1;
            depth[node] = d;
        }
        tallest = tallest.max(depth[start]);
        total += depth[start];
    }
    (tallest, total as f64 / parent.len().max(1) as f64)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let min_exp = args.usize("min-exp", 10);
    let max_exp = args.usize("max-exp", if quick { 14 } else { 20 });
    let reps = args.usize("reps", if quick { 2 } else { 3 });
    let threads = args.usize("threads-per-run", 8);

    println!(
        "E1: union-forest height vs n  (m = 2n random unites, {threads} threads, {reps} seeds)"
    );
    println!(
        "paper: height = O(log n) w.h.p.  [Cor 4.2.1]; ops take O(log n) steps w.h.p. [Thm 4.3]\n"
    );

    let mut table = Table::new(&["n", "lg n", "height(max)", "height/lg n", "mean depth", "sets"]);
    for exp in min_exp..=max_exp {
        let n = 1usize << exp;
        let mut heights = Vec::new();
        let mut depths = Vec::new();
        let mut final_sets = 0;
        for rep in 0..reps {
            let seed = 0xE1_000 + rep as u64;
            let dsu: Dsu = Dsu::with_seed(n, seed);
            let w = WorkloadSpec::new(n, 2 * n).unite_fraction(1.0).generate(seed ^ 0x9E37);
            run_shards(&dsu, &w, threads);
            let (h, md) = forest_height_and_mean_depth(&dsu.union_forest_snapshot());
            heights.push(h as f64);
            depths.push(md);
            final_sets = dsu.set_count();
        }
        let h_max = heights.iter().cloned().fold(0.0f64, f64::max);
        let lg = exp as f64;
        table.row(&[
            format!("2^{exp}"),
            f2(lg),
            format!("{h_max:.0}"),
            f2(h_max / lg),
            f2(mean(&depths)),
            final_sets.to_string(),
        ]);
    }
    table.print();
    println!("\nexpected shape: height/lg n stays a small constant (≈1–3) as n grows 2^{min_exp}..2^{max_exp}.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E5 — Lemma 5.3 + Theorem 5.4: the Ω(m log(np/m)) lower bound,
//! realized.**
//!
//! The paper's construction: build `n/δ` binomial-style trees of size `δ`
//! whose average node depth is ≥ (lg δ)/4 *despite* splitting finds
//! (Lemma 5.3), then have all `p` processes run `SameSet(x, x)` storms
//! against random members in lockstep — every query walks its tree's full
//! depth, forcing Ω(log δ) work per operation (Theorem 5.4, part 2).
//!
//! Runs on the APRAM simulator, where "lockstep" is exact: one process
//! executes the build; `p` processes execute the query storm under a
//! round-robin schedule. The table reports measured accesses per query
//! against `lg δ`; the ratio column should stay a constant ≥ some bound as
//! `δ` grows — that is the lower-bound shape.
//!
//! Usage: `--n 4096 --p 8 --max-delta 1024 --quick true --csv out.csv`

use apram::{Machine, Memory, Program, RoundRobin};
use apram_dsu::{random_ids, DsuProcess, Policy};
use dsu_harness::{table::f2, Args, Table};
use dsu_workloads::{lower_bound_workload, Op};
use linearize::DsuOp;

fn to_sim_ops(ops: &[Op]) -> Vec<DsuOp> {
    ops.iter()
        .map(|op| match *op {
            Op::Unite(x, y) => DsuOp::Unite(x, y),
            Op::SameSet(x, y) => DsuOp::SameSet(x, y),
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 10 } else { 1 << 12 });
    let p = args.usize("p", 8);
    let max_delta = args.usize("max-delta", n.min(if quick { 256 } else { 1024 }));
    let seed = args.u64("seed", 0xE5);

    println!("E5: lockstep SameSet storm vs δ  (n = {n}, p = {p} simulated processes)");
    println!(
        "paper: expected work Ω(m log(np/m)) — each query pays Ω(log δ) [Lemma 5.3, Thm 5.4]\n"
    );

    let mut table = Table::new(&[
        "delta",
        "lg δ",
        "trees",
        "accesses/query",
        "accesses / lg δ",
        "build accesses/op",
    ]);
    let mut delta = 4usize;
    while delta <= max_delta {
        let wl = lower_bound_workload(n, delta, seed);
        let ids = random_ids(n, seed ^ delta as u64);

        // Phase 1: one process builds the binomial trees (two-try finds).
        let mut machine = Machine::new(Memory::identity(n));
        let mut builder =
            DsuProcess::new(to_sim_ops(&wl.build.ops), Policy::TwoTry, false, ids.clone());
        let build_report = {
            let mut refs: Vec<&mut dyn Program> = vec![&mut builder];
            machine.run(&mut refs, &mut RoundRobin::new(), u64::MAX / 2)
        };
        assert!(build_report.completed, "build phase must finish");
        let build_accesses = build_report.memory_accesses;

        // Phase 2: p processes run the same SameSet(x, x) storm in lockstep.
        let storm_ops = to_sim_ops(&wl.queries.ops);
        let mut procs: Vec<DsuProcess> = (0..p)
            .map(|_| DsuProcess::new(storm_ops.clone(), Policy::TwoTry, false, ids.clone()))
            .collect();
        let storm_report = {
            let mut refs: Vec<&mut dyn Program> =
                procs.iter_mut().map(|q| q as &mut dyn Program).collect();
            machine.run(&mut refs, &mut RoundRobin::new(), u64::MAX / 2)
        };
        assert!(storm_report.completed, "storm phase must finish");

        let queries = (p * wl.queries.len()) as f64;
        let per_query = storm_report.memory_accesses as f64 / queries;
        let lg_delta = (delta as f64).log2();
        table.row(&[
            delta.to_string(),
            f2(lg_delta),
            (n / delta).to_string(),
            f2(per_query),
            f2(per_query / lg_delta),
            f2(build_accesses as f64 / wl.build.len().max(1) as f64),
        ]);
        delta *= 4;
    }
    table.print();
    println!("\nexpected shape: accesses/query grows with lg δ (the ratio column stays");
    println!("bounded below by a constant) — the Ω(log(np/m)) term is real work.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E13 — Lemma 3.2 under chaos, on real threads.**
//!
//! E8 checks linearizability on the APRAM simulator, where the adversary
//! is the schedule. This experiment closes the sim-vs-native gap: the
//! production operations run on actual `std::thread`s over a
//! `FaultyStore`-wrapped layout, with spurious CAS failures, delayed
//! loads, and stall windows injected at swept rates, and every timed
//! history (recorded by `linearize::HistoryRecorder`'s shared `SeqCst`
//! clock) must pass the same Wing–Gong checker. A final canary section
//! re-runs the harness over `BrokenStore` (unconditional CAS) and demands
//! *refutations* — proving the apparatus can still catch a lost-update
//! bug, not merely bless everything it sees.
//!
//! Per-thread `RetryBudget` sinks double as livelock tripwires: a faulted
//! run that retries past its budget panics with a counter dump instead of
//! hanging the experiment.
//!
//! Usage: `--histories 120 --threads 4 --ops-per-proc 5 --n 6
//!         --rates 0.1,0.3,0.6 --csv out.csv --quick true`

use concurrent_dsu::order::splitmix64;
use concurrent_dsu::{
    BrokenStore, Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, OpStats, PackedStore,
    RetryBudget, ShardedStore, TwoTrySplit,
};
use dsu_harness::{Args, Table};
use linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec, HistoryRecorder};

struct CellOutcome {
    passed: usize,
    refuted: usize,
    stats: OpStats,
    faults: u64,
}

/// Records and checks `histories` native histories over the given store
/// constructor; returns verdicts plus merged per-thread counters.
fn run_cell<S, F, R>(
    histories: usize,
    threads: usize,
    ops_per_proc: usize,
    n: usize,
    base_seed: u64,
    make: F,
    faults_of: R,
) -> CellOutcome
where
    S: DsuStore,
    F: Fn(u64) -> (Dsu<TwoTrySplit, S>, u64),
    R: Fn(&S) -> u64,
{
    let mut outcome = CellOutcome { passed: 0, refuted: 0, stats: OpStats::default(), faults: 0 };
    for h in 0..histories {
        let seed = base_seed ^ (h as u64 * 6151 + 3);
        let (dsu, retry_budget) = make(seed);
        let recorder = HistoryRecorder::new();
        let barrier = std::sync::Barrier::new(threads);
        let mut history: Vec<CompletedOp<DsuOp>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (dsu, recorder, barrier) = (&dsu, &recorder, &barrier);
                    s.spawn(move || {
                        // A per-thread retry budget: livelock dies fast
                        // with a diagnostic dump, not at the job timeout.
                        let mut sink = RetryBudget::new("e13 history thread", retry_budget);
                        // Without the start barrier the 5-op bursts run
                        // back to back and never actually race.
                        barrier.wait();
                        let ops: Vec<CompletedOp<DsuOp>> = (0..ops_per_proc)
                            .map(|i| {
                                let z = splitmix64(seed ^ ((t as u64) << 32) ^ i as u64);
                                let (x, y) = ((z >> 8) as usize % n, (z >> 24) as usize % n);
                                if z.is_multiple_of(4) {
                                    recorder.record(DsuOp::SameSet(x, y), || {
                                        dsu.same_set_with(x, y, &mut sink)
                                    })
                                } else {
                                    recorder.record(DsuOp::Unite(x, y), || {
                                        dsu.unite_with(x, y, &mut sink)
                                    })
                                }
                            })
                            .collect();
                        (ops, sink.into_stats())
                    })
                })
                .collect();
            for handle in handles {
                let (ops, stats) = handle.join().unwrap();
                history.extend(ops);
                outcome.stats.merge(&stats);
            }
        });
        outcome.faults += faults_of(dsu.store());
        match check_linearizable(&DsuSpec::new(n), &history) {
            Ok(_) => outcome.passed += 1,
            Err(_) => outcome.refuted += 1,
        }
    }
    outcome
}

fn faulted_cell<S: DsuStore>(
    table: &mut Table,
    histories: usize,
    threads: usize,
    ops_per_proc: usize,
    n: usize,
    rate: f64,
) -> (usize, usize) {
    // Expected injected retries per link ~ r/(1-r); budget three orders of
    // magnitude above the whole thread's expectation.
    let budget = (1000.0 * ops_per_proc as f64 * rate / (1.0 - rate)).ceil() as u64 + 1000;
    let cell = run_cell::<FaultyStore<S>, _, _>(
        histories,
        threads,
        ops_per_proc,
        n,
        0xE13,
        |seed| {
            (
                Dsu::from_store(FaultyStore::with_plan(
                    S::with_seed(n, seed),
                    FaultPlan::rate(seed, rate),
                )),
                budget,
            )
        },
        |store| store.fault_report().total(),
    );
    table.row(&[
        S::NAME.to_string(),
        format!("{rate:.2}"),
        histories.to_string(),
        cell.passed.to_string(),
        cell.stats.cas_retries.to_string(),
        cell.stats.links_fail.to_string(),
        cell.faults.to_string(),
    ]);
    (cell.passed, histories)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let histories = args.usize("histories", if quick { 40 } else { 120 });
    let threads = args.usize("threads", 4);
    let ops_per_proc = args.usize("ops-per-proc", 5);
    let n = args.usize("n", 6);
    let rates: Vec<f64> = args
        .get("rates")
        .map(|s| s.split(',').map(|r| r.trim().parse().expect("rate")).collect())
        .unwrap_or_else(|| vec![0.1, 0.3, 0.6]);

    assert!(
        threads * ops_per_proc <= 64,
        "history size {} exceeds the checker's 64-op bound",
        threads * ops_per_proc
    );
    println!(
        "E13: native linearizability under chaos — {histories} histories × \
         {{packed, flat, sharded}} × rates {rates:?} ({threads} threads × {ops_per_proc} ops, n = {n})"
    );
    println!("paper Lemma 3.2: every execution linearizable — now with faults injected\n");

    let mut table = Table::new(&[
        "layout",
        "rate",
        "histories",
        "linearizable",
        "cas_retries",
        "links_fail",
        "faults",
    ]);
    let (mut ok, mut total) = (0, 0);
    for &rate in &rates {
        for (p, t) in [
            faulted_cell::<PackedStore>(&mut table, histories, threads, ops_per_proc, n, rate),
            faulted_cell::<FlatStore>(&mut table, histories, threads, ops_per_proc, n, rate),
            faulted_cell::<ShardedStore>(&mut table, histories, threads, ops_per_proc, n, rate),
        ] {
            ok += p;
            total += t;
        }
    }

    // The canary: BrokenStore histories must be refuted. Delay-only
    // injection around the broken CAS widens the lost-update window from
    // nanoseconds to thousands of spin hints, so the race it hides fires
    // reliably on the same schedules a correct store survives above.
    let delay_plan = |seed| FaultPlan {
        seed,
        cas_fail_rate: 0.0,
        stale_load_rate: 0.8,
        max_spin: 5_000,
        stall_period: 0,
        stall_spins: 0,
    };
    let canary_histories = histories.max(60);
    let canary = run_cell::<FaultyStore<BrokenStore<PackedStore>>, _, _>(
        canary_histories,
        threads,
        8.min(64 / threads),
        4,
        0xB40C,
        |seed| {
            (
                Dsu::from_store(FaultyStore::with_plan(
                    BrokenStore::new(PackedStore::with_seed(4, seed)),
                    delay_plan(seed),
                )),
                u64::MAX, // the canary is about verdicts, not budgets
            )
        },
        |store| store.fault_report().total(),
    );
    table.row(&[
        "BROKEN".to_string(),
        "canary".to_string(),
        canary_histories.to_string(),
        canary.passed.to_string(),
        canary.stats.cas_retries.to_string(),
        canary.stats.links_fail.to_string(),
        canary.faults.to_string(),
    ]);

    table.print();
    println!(
        "\nresult: {ok}/{total} faulted histories linearizable (paper expects all); \
         canary refuted {}/{} broken histories (must be > 0).",
        canary.refuted, canary_histories
    );
    assert_eq!(ok, total, "linearizability refuted on a *correct* store — see the table");
    assert!(
        canary.refuted > 0,
        "BrokenStore was never refuted: the checker or the recorder has lost its teeth"
    );
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

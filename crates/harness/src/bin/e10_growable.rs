//! **E10 — Section 3 remark + Section 7: `MakeSet` and on-the-fly ids.**
//!
//! The growable structure creates elements concurrently with unites and
//! queries: each thread alternates `make_set` with operations on the
//! elements it has seen. Ids are SplitMix64 hashes generated on the fly —
//! the paper's Section 7 suggestion. The table reports throughput vs
//! thread count and verifies the final structure agrees with a confluent
//! oracle built from the surviving unite pairs.
//!
//! Usage: `--ops-per-thread 500000 --unite-frac 0.4 --quick true --csv out.csv`

use concurrent_dsu::{GrowableDsu, TwoTrySplit};
use dsu_harness::{table::f2, Args, Table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::Barrier;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let ops_per_thread = args.usize("ops-per-thread", if quick { 100_000 } else { 500_000 });
    let unite_frac = args.f64("unite-frac", 0.4);
    let ladder = args.thread_ladder();

    println!(
        "E10: growable universe churn  ({ops_per_thread} ops/thread, {unite_frac} unite fraction)"
    );
    println!("paper §3 remark/§7: MakeSet with on-the-fly ids; operations stay lock-free\n");

    let mut table = Table::new(&["p", "make_sets", "final sets", "Mops/s", "speedup"]);
    let mut base = None;
    for &p in &ladder {
        let dsu: GrowableDsu<TwoTrySplit> = GrowableDsu::with_seed(0xE10);
        let barrier = Barrier::new(p + 1);
        let unite_pairs: Vec<(usize, usize)> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..p {
                let dsu = &dsu;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    let mut rng = ChaCha12Rng::seed_from_u64(t as u64);
                    let mut mine: Vec<usize> = Vec::new();
                    let mut pairs = Vec::new();
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        if mine.len() < 2 || i % 3 == 0 {
                            mine.push(dsu.make_set());
                        } else if rng.gen_bool(unite_frac) {
                            let a = mine[rng.gen_range(0..mine.len())];
                            let b = mine[rng.gen_range(0..mine.len())];
                            dsu.unite(a, b);
                            pairs.push((a, b));
                        } else {
                            let a = mine[rng.gen_range(0..mine.len())];
                            let b = mine[rng.gen_range(0..mine.len())];
                            dsu.same_set(a, b);
                        }
                    }
                    pairs
                }));
            }
            barrier.wait();
            let start = Instant::now();
            let pairs: Vec<(usize, usize)> =
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            let elapsed = start.elapsed();
            let total_ops = (p * ops_per_thread) as f64;
            let mops = total_ops / elapsed.as_secs_f64() / 1e6;
            let b = *base.get_or_insert(mops);
            table.row(&[
                p.to_string(),
                dsu.len().to_string(),
                dsu.set_count().to_string(),
                f2(mops),
                f2(mops / b),
            ]);
            pairs
        });
        // Consistency: final set count equals elements minus spanning links
        // of the union of all unite pairs (fast sequential oracle — the
        // universes here run into the millions).
        let n = dsu.len();
        let mut oracle = sequential_dsu::SeqDsu::new(
            n,
            sequential_dsu::Linking::ByRank,
            sequential_dsu::Compaction::Halving,
        );
        for (a, b) in unite_pairs {
            oracle.unite(a, b);
        }
        assert_eq!(dsu.set_count(), oracle.set_count(), "p = {p}: oracle mismatch");
        assert_eq!(
            sequential_dsu::Partition::from_labels(&dsu.labels_snapshot()),
            oracle.partition(),
            "p = {p}: partition mismatch"
        );
    }
    table.print();
    println!("\nexpected shape: throughput grows with p; every run's final partition matches");
    println!("the confluent oracle exactly (correctness under concurrent MakeSet).");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

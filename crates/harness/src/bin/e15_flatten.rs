//! **E15 — Adaptive-priority work bound: total find-path length is
//! O(m·(log(np²/m) + 1)), and a flatten sweep resets it to ≤ 1/find.**
//!
//! The 2020 journal version of the source paper (arXiv 2003.01203) shows
//! that with randomized (and adaptive index-based) priorities, `m`
//! operations by `p` processes on `n` elements do
//! `O(m·(log(np²/m) + 1))` total work once `m` dominates — the same
//! `np/m`-style crossover as Theorem 5.1 but with the sharper `p²`
//! numerator from the refined analysis. The PR 9 `find_hops` counter
//! measures exactly the quantity the bound charges: parent hops walked by
//! finds (loop iterations minus the constant per-call overhead).
//!
//! This experiment sweeps `p` at two universe sizes and prints measured
//! `find_hops/op` next to the predicted `log2(np²/m + 1) + 1` curve. The
//! bound is an *upper* bound, so the reproduced claim is containment, not
//! equality: the measured/predicted ratio must stay bounded by a constant
//! (here well under 1) at every `(n, p)` — it *falls* as `p` grows,
//! because the `p²` term is pessimistic on a ladder this short, and the
//! experiment asserts it never exceeds 1 rather than pretending the curve
//! is tight. The last two columns check the maintenance pass against the
//! bound's steady-state limit: after a quiesced [`Dsu::flatten`], a
//! query-only storm must observe **≤ 1 hop per find** (depth ≤ 1 —
//! O(1) finds, the flatten pass's contract), independent of `n` and `p`.
//!
//! Usage: `--n 262144 --m 524288 --reps 3 --quick true --csv out.csv`

use concurrent_dsu::{Dsu, TwoTrySplit};
use dsu_harness::{mean, run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::WorkloadSpec;

/// The predicted per-op work shape, `log2(np²/m + 1) + 1`.
fn predicted(n: usize, m: usize, p: usize) -> f64 {
    ((n as f64) * (p as f64) * (p as f64) / (m as f64) + 1.0).log2() + 1.0
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n_base = args.usize("n", if quick { 1 << 14 } else { 1 << 18 });
    let reps = args.usize("reps", if quick { 2 } else { 3 });
    let ladder = args.thread_ladder();

    println!("E15: find-path work vs (n, p), and the flatten reset  ({reps} seeds)");
    println!("paper: E[total work] = O(m(log(np^2/m) + 1))  [arXiv 2003.01203]\n");

    let mut table = Table::new(&[
        "n",
        "p",
        "hops/op",
        "predicted log+1",
        "measured/predicted",
        "post-flatten hops/find",
        "depth<=1",
    ]);
    for &n in &[n_base, 4 * n_base] {
        let m = args.usize("m", 2 * n);
        for &p in &ladder {
            let mut hops = Vec::new();
            let mut post_hops = Vec::new();
            let mut flat = true;
            for rep in 0..reps {
                let seed = 0xE15_000 + rep as u64;
                let dsu: Dsu<TwoTrySplit> = Dsu::with_seed(n, seed);
                let w = WorkloadSpec::new(n, m).unite_fraction(0.5).generate(seed ^ 0x51);
                let metrics = run_shards_instrumented(&dsu, &w, p, false);
                let stats = metrics.stats.expect("instrumented");
                hops.push(stats.find_hops as f64 / m as f64);
                // The steady-state check: sweep at quiescence, then a
                // query-only storm may walk at most one hop per find.
                dsu.flatten();
                let storm = WorkloadSpec::new(n, m / 2).unite_fraction(0.0).generate(seed ^ 0xF1);
                let post =
                    run_shards_instrumented(&dsu, &storm, p, false).stats.expect("instrumented");
                post_hops.push(post.find_hops as f64 / post.finds.max(1) as f64);
                flat &= *post_hops.last().unwrap() <= 1.0;
            }
            let pred = predicted(n, m, p);
            let measured = mean(&hops);
            assert!(
                measured <= pred,
                "measured hops/op {measured:.2} exceeds the O(log(np^2/m)+1) curve {pred:.2} \
                 at n={n} p={p}"
            );
            table.row(&[
                n.to_string(),
                p.to_string(),
                f2(measured),
                f2(pred),
                f2(measured / pred),
                f2(mean(&post_hops)),
                if flat { "yes".into() } else { "NO".into() },
            ]);
            assert!(flat, "post-flatten storm exceeded 1 hop/find at n={n} p={p}");
        }
    }
    table.print();
    println!("\nexpected shape: measured/predicted bounded by a constant < 1 at every (n, p)");
    println!("(the p^2 term is loose on short ladders, so the ratio falls as p grows);");
    println!("post-flatten hops/find <= 1 always.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! Runs the whole experiment suite (E1–E12) in order, forwarding flags.
//!
//! `cargo run --release -p dsu-harness --bin run_all -- [--quick true] [--csv-dir DIR]`
//!
//! Each experiment is executed as a child process (so one failure doesn't
//! take the suite down) and its output streams through; with `--csv-dir`
//! every experiment also drops `eNN.csv` into the directory.

use dsu_harness::Args;
use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "e01_height",
    "e02_work_vs_p",
    "e03_variants",
    "e04_speedup",
    "e05_lower_bound",
    "e06_lockstep",
    "e07_sequential",
    "e08_linearizability",
    "e09_applications",
    "e10_growable",
    "e11_independence",
    "e12_cas_anatomy",
];

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let csv_dir = args.get("csv-dir").map(str::to_string);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let exe_dir =
        std::env::current_exe().expect("own path").parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    for (i, name) in EXPERIMENTS.iter().enumerate() {
        println!("\n================================================================");
        println!("running {name} ({}/{})", i + 1, EXPERIMENTS.len());
        println!("================================================================");
        let mut cmd = Command::new(exe_dir.join(name));
        if quick {
            cmd.args(["--quick", "true"]);
        }
        if let Some(dir) = &csv_dir {
            cmd.args(["--csv", &format!("{dir}/{}.csv", &name[..3])]);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}

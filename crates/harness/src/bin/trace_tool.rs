//! Workload trace utility: generate, inspect, and replay archived traces.
//!
//! Every experiment's input is reproducible from its seed, but archiving
//! the *materialized* trace makes results portable across versions of the
//! generators. This tool round-trips `dsu-workloads` JSON traces:
//!
//! ```bash
//! # generate a trace to a file
//! trace_tool --mode gen --n 1024 --m 8192 --unite-frac 0.5 --seed 7 --out /tmp/t.json
//! # summarize an existing trace
//! trace_tool --mode info --trace /tmp/t.json
//! # replay it against the concurrent structure and report the outcome
//! trace_tool --mode replay --trace /tmp/t.json --p 8
//! ```

use concurrent_dsu::Dsu;
use dsu_harness::{run_shards, table::f2, Args};
use dsu_workloads::{ElementDist, Workload, WorkloadSpec};

fn main() {
    let args = Args::parse();
    match args.get("mode").unwrap_or("info") {
        "gen" => {
            let n = args.usize("n", 1024);
            let m = args.usize("m", 8192);
            let spec = WorkloadSpec::new(n, m)
                .unite_fraction(args.f64("unite-frac", 0.5))
                .element_dist(match args.get("zipf") {
                    Some(theta) => ElementDist::Zipf(theta.parse().expect("zipf exponent")),
                    None => ElementDist::Uniform,
                });
            let w = spec.generate(args.u64("seed", 0));
            let out = args.get("out").expect("--out PATH required for --mode gen");
            std::fs::write(out, w.to_json()).expect("write trace");
            println!("wrote {} ops over 0..{} to {out}", w.len(), w.n);
        }
        "info" => {
            let w = load(&args);
            println!("universe:       0..{}", w.n);
            println!("operations:     {}", w.len());
            println!("unite fraction: {}", f2(w.unite_fraction()));
            let mut touched = vec![false; w.n];
            for op in &w.ops {
                let (x, y) = op.operands();
                touched[x] = true;
                touched[y] = true;
            }
            println!("elements touched: {} / {}", touched.iter().filter(|&&t| t).count(), w.n);
        }
        "replay" => {
            let w = load(&args);
            let p = args.usize("p", 8);
            let dsu: Dsu = Dsu::with_seed(
                w.n,
                args.u64("seed", Dsu::<concurrent_dsu::TwoTrySplit>::DEFAULT_SEED),
            );
            let metrics = run_shards(&dsu, &w, p);
            println!(
                "replayed {} ops on {p} threads in {:.2} ms ({} Mops/s)",
                metrics.ops,
                metrics.elapsed.as_secs_f64() * 1e3,
                f2(metrics.mops())
            );
            println!("final sets: {}", dsu.set_count());
            println!("union forest height: {}", dsu.union_forest_height());
        }
        other => {
            eprintln!("unknown --mode {other}; expected gen | info | replay");
            std::process::exit(2);
        }
    }
}

fn load(args: &Args) -> Workload {
    let path = args.get("trace").expect("--trace PATH required");
    let json = std::fs::read_to_string(path).expect("read trace");
    Workload::from_json(&json).expect("parse trace")
}

//! **E8 — Lemma 3.2: linearizability, checked exhaustively.**
//!
//! Thousands of small concurrent executions on the APRAM simulator — every
//! find policy, standard and early-termination operations, round-robin,
//! seeded-random, and adversarially skewed schedules — each producing a
//! timed history that the Wing–Gong checker must admit. One
//! non-linearizable history refutes the lemma (and prints itself).
//!
//! Usage: `--histories 400 --procs 3 --ops-per-proc 5 --n 6 --quick true`

use apram::{RoundRobin, Scheduler, SeededRandom, Weighted};
use apram_dsu::{random_ids, run_concurrent, DsuProcess, Policy};
use dsu_harness::{Args, Table};
use linearize::{check_linearizable, DsuOp, DsuSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

const POLICIES: [Policy; 5] =
    [Policy::NoCompaction, Policy::OneTry, Policy::TwoTry, Policy::Halving, Policy::Compression];

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let histories = args.usize("histories", if quick { 100 } else { 500 });
    let procs = args.usize("procs", 3);
    let ops_per_proc = args.usize("ops-per-proc", 5);
    let n = args.usize("n", 6);

    println!(
        "E8: linearizability of {histories} histories × policies × schedules  \
         (n = {n}, {procs} procs × {ops_per_proc} ops)"
    );
    println!("paper Lemma 3.2: every concurrent execution is linearizable\n");

    let mut table = Table::new(&["policy", "ops", "schedule", "histories", "linearizable"]);
    let mut total = 0u64;
    let mut ok = 0u64;
    for policy in POLICIES {
        for early in [false, true] {
            for schedule in ["round-robin", "random", "skewed"] {
                let mut passed = 0usize;
                for h in 0..histories {
                    let seed = (h as u64) * 1003 + policy as u64 * 77 + early as u64;
                    let mut rng = ChaCha12Rng::seed_from_u64(seed);
                    let ids = random_ids(n, seed ^ 0xABC);
                    let processes: Vec<DsuProcess> = (0..procs)
                        .map(|_| {
                            let ops: Vec<DsuOp> = (0..ops_per_proc)
                                .map(|_| {
                                    let x = rng.gen_range(0..n);
                                    let y = rng.gen_range(0..n);
                                    if rng.gen_bool(0.5) {
                                        DsuOp::Unite(x, y)
                                    } else {
                                        DsuOp::SameSet(x, y)
                                    }
                                })
                                .collect();
                            DsuProcess::new(ops, policy, early, ids.clone())
                        })
                        .collect();
                    let mut sched: Box<dyn Scheduler> = match schedule {
                        "round-robin" => Box::new(RoundRobin::new()),
                        "random" => Box::new(SeededRandom::new(seed ^ 0x5EED)),
                        _ => Box::new(Weighted::new(vec![50, 1, 8], seed)),
                    };
                    let outcome = run_concurrent(n, processes, sched.as_mut(), 10_000_000);
                    let history = outcome.history();
                    match check_linearizable(&DsuSpec::new(n), &history) {
                        Ok(_) => passed += 1,
                        Err(e) => {
                            eprintln!("REFUTATION ({policy:?}, early={early}, {schedule}, seed {seed}): {e}");
                            eprintln!("{history:#?}");
                        }
                    }
                }
                total += histories as u64;
                ok += passed as u64;
                table.row(&[
                    policy.label().to_string(),
                    if early { "early" } else { "standard" }.to_string(),
                    schedule.to_string(),
                    histories.to_string(),
                    passed.to_string(),
                ]);
            }
        }
    }
    table.print();
    println!("\nresult: {ok}/{total} histories linearizable (paper expects all).");
    assert_eq!(ok, total, "linearizability refuted — see stderr");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

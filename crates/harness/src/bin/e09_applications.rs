//! **E9 — the introduction's applications: connected components, minimum
//! spanning trees, percolation.**
//!
//! Three end-to-end workloads driven by the concurrent structure:
//!
//! * **Connected components** on `G(n, m)` and R-MAT graphs: parallel
//!   union of edge shards vs the sequential rank+halving baseline, cross
//!   checked against BFS;
//! * **Minimum spanning forest**: parallel Borůvka (concurrent unite) vs
//!   sequential Kruskal — identical trees required (weights are distinct);
//! * **Percolation**: Monte-Carlo threshold estimate, trials fanned over
//!   threads (literature value ≈ 0.5927).
//!
//! Usage: `--scale 20 --trials 64 --quick true --csv out.csv`

use dsu_graph::components::{count_components, parallel_components, sequential_components};
use dsu_graph::mst::{boruvka_parallel, kruskal};
use dsu_graph::percolation::percolation_mc_parallel;
use dsu_graph::{gen, EdgeList};
use dsu_harness::{table::f2, table::f3, Args, Table};
use std::time::Instant;

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1e3)
}

fn cc_rows(table: &mut Table, name: &str, graph: &EdgeList, ladder: &[usize]) {
    let (seq_labels, seq_ms) = time_ms(|| sequential_components(graph));
    let comps = count_components(&seq_labels);
    let oracle = graph.to_csr().bfs_components();
    assert_eq!(count_components(&oracle), comps, "sequential CC disagrees with BFS on {name}");
    table.row(&[
        format!("cc/{name}"),
        "seq rank+halving".into(),
        "1".into(),
        f2(seq_ms),
        f2(1.0),
        comps.to_string(),
    ]);
    for &p in ladder {
        let (labels, ms) = time_ms(|| parallel_components(graph, p));
        assert_eq!(count_components(&labels), comps, "parallel CC wrong on {name}");
        table.row(&[
            format!("cc/{name}"),
            "jt-two-try".into(),
            p.to_string(),
            f2(ms),
            f2(seq_ms / ms),
            comps.to_string(),
        ]);
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let scale = args.usize("scale", if quick { 16 } else { 19 });
    let n = 1usize << scale;
    let m = 4 * n;
    let ladder = args.thread_ladder();

    println!("E9: applications  (n = 2^{scale}, m = {m})\n");

    let mut table = Table::new(&["workload", "impl", "p", "ms", "speedup vs seq", "result"]);

    let gnm = gen::gnm(n, m, 0x0E91);
    cc_rows(&mut table, "gnm", &gnm, &ladder);
    let rmat = gen::rmat_standard(scale as u32, m, 0x0E92);
    cc_rows(&mut table, "rmat", &rmat, &ladder);

    // MSF: Kruskal vs parallel Borůvka.
    let msf_graph = gen::gnm(n / 2, m / 2, 0x0E93);
    let (k, k_ms) = time_ms(|| kruskal(&msf_graph));
    table.row(&[
        "msf/gnm".into(),
        "kruskal (seq)".into(),
        "1".into(),
        f2(k_ms),
        f2(1.0),
        format!("w={}", k.total_weight),
    ]);
    for &p in &ladder {
        let (b, b_ms) = time_ms(|| boruvka_parallel(&msf_graph, p));
        assert_eq!(b.total_weight, k.total_weight, "Borůvka disagrees with Kruskal");
        assert_eq!(b.edges, k.edges, "MSF edge sets must match (distinct weights)");
        table.row(&[
            "msf/gnm".into(),
            "boruvka (jt)".into(),
            p.to_string(),
            f2(b_ms),
            f2(k_ms / b_ms),
            format!("w={}", b.total_weight),
        ]);
    }

    // Percolation threshold (literature: p* ≈ 0.5927).
    let grid = args.usize("grid", if quick { 64 } else { 128 });
    let trials = args.usize("trials", if quick { 32 } else { 64 });
    let mut perc_p1 = None;
    for &p in &ladder {
        let (est, ms) = time_ms(|| percolation_mc_parallel(grid, trials, 0x0E94, p));
        let base = *perc_p1.get_or_insert(ms);
        table.row(&[
            format!("percolation/{grid}x{grid}"),
            "mc trials".into(),
            p.to_string(),
            f2(ms),
            f2(base / ms),
            format!("p*={}", f3(est)),
        ]);
    }

    table.print();
    println!("\nexpected shape: parallel CC/Borůvka beat their sequential baselines as p");
    println!("grows; results (components, MSF weight, threshold) match oracles exactly.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E11 — the independence assumption (∗), probed.**
//!
//! The paper's bounds assume the random node order is *independent* of the
//! linearization order of the unites. An adversary who could see the ids
//! could issue unites in id-correlated order and try to build deep trees.
//! We compare three unite orders over the same edge set (a random spanning
//! tree):
//!
//! * `random` — edges shuffled independently of ids (the assumption holds);
//! * `id-ascending` — edges sorted by the smaller endpoint's id;
//! * `id-descending` — sorted the other way.
//!
//! Measured: union-forest height and find-loop iterations per subsequent
//! query. The paper's theory protects the `random` row; the table shows
//! how much (or little) an id-aware adversary gains — in these runs the
//! correlated orders stay logarithmic too, consistent with the authors'
//! remark that the assumption is believed removable (their follow-up
//! work removes it).
//!
//! Usage: `--n 262144 --reps 3 --quick true --csv out.csv`

use concurrent_dsu::{Dsu, TwoTrySplit};
use dsu_harness::{mean, run_shards, run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::{Op, Workload};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 18 });
    let reps = args.usize("reps", if quick { 2 } else { 3 });
    let threads = args.usize("threads-per-run", 8);

    println!(
        "E11: unite order vs random node order  (n = {n}, spanning-tree unites, {threads} threads)"
    );
    println!("paper assumption (∗): node order independent of unite linearization order\n");

    let mut table = Table::new(&["unite order", "height", "height/lg n", "query iters/op"]);
    for order_kind in ["random", "id-ascending", "id-descending"] {
        let mut heights = Vec::new();
        let mut iters = Vec::new();
        for rep in 0..reps {
            let seed = 0x0E110 + rep as u64;
            let dsu: Dsu<TwoTrySplit> = Dsu::with_seed(n, seed);
            // A random spanning tree's edges.
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x7);
            let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i, rng.gen_range(0..i))).collect();
            match order_kind {
                "random" => edges.shuffle(&mut rng),
                "id-ascending" => {
                    edges.sort_by_key(|&(a, b)| dsu.id_of(a).min(dsu.id_of(b)));
                }
                _ => {
                    edges.sort_by_key(|&(a, b)| std::cmp::Reverse(dsu.id_of(a).min(dsu.id_of(b))));
                }
            }
            let unites = Workload::new(n, edges.iter().map(|&(a, b)| Op::Unite(a, b)).collect());
            run_shards(&dsu, &unites, threads);
            heights.push(dsu.union_forest_height() as f64);
            // Query storm after the build measures how costly the forest is.
            let queries =
                Workload::new(n, (0..n).map(|i| Op::SameSet(i, (i * 2654435761) % n)).collect());
            let metrics = run_shards_instrumented(&dsu, &queries, threads, false);
            iters.push(metrics.stats.unwrap().loop_iters as f64 / n as f64);
        }
        let h = mean(&heights);
        table.row(&[order_kind.to_string(), f2(h), f2(h / (n as f64).log2()), f2(mean(&iters))]);
    }
    table.print();
    println!("\nexpected shape: the random row is O(log n) by Cor 4.2.1; the id-correlated");
    println!("rows quantify the assumption's slack (follow-up work removes it entirely).");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

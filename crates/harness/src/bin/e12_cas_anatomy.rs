//! **E12 — the anatomy of CAS retries: the cost Anderson & Woll ignored.**
//!
//! Section 5 stresses that a concurrent analysis must count the steps that
//! *fail* to change parent pointers — AW's claimed bound "completely
//! ignores interactions among processes doing halving on intersecting
//! paths". This experiment makes those interactions visible: a Zipf
//! contention sweep (hotter skew ⇒ more intersecting find paths) with the
//! full per-operation breakdown of compaction CAS successes/failures and
//! link CAS successes/failures for each find variant.
//!
//! Usage: `--n 65536 --m 262144 --p 8 --quick true --csv out.csv`

use concurrent_dsu::{Compress, Dsu, FindPolicy, Halving, NoCompaction, OneTrySplit, TwoTrySplit};
use dsu_harness::{run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::{ElementDist, Workload, WorkloadSpec};

fn measure<F: FindPolicy>(n: usize, w: &Workload, p: usize) -> [f64; 5] {
    let dsu: Dsu<F> = Dsu::with_seed(n, 0xE12);
    let metrics = run_shards_instrumented(&dsu, w, p, false);
    let s = metrics.stats.expect("instrumented");
    let m = w.len() as f64;
    let fail_rate = if s.cas_attempts() == 0 {
        0.0
    } else {
        (s.compact_cas_fail + s.links_fail) as f64 / s.cas_attempts() as f64
    };
    [
        s.compact_cas_ok as f64 / m,
        s.compact_cas_fail as f64 / m,
        s.links_ok as f64 / m,
        s.links_fail as f64 / m,
        fail_rate,
    ]
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 12 } else { 1 << 14 });
    let m = args.usize("m", 2 * n);
    let p = args.usize("p", 16);

    println!("E12: CAS anatomy under contention  (n = {n}, m = {m}, p = {p}, unite-only churn)");
    println!("paper §5: failed CASes are real work — the cost AW's analysis missed\n");

    let mut table = Table::new(&[
        "zipf θ",
        "variant",
        "compact-ok/op",
        "compact-fail/op",
        "link-ok/op",
        "link-fail/op",
        "fail rate",
    ]);
    for theta in [0.0, 0.8, 1.2, 1.6] {
        let dist = if theta == 0.0 { ElementDist::Uniform } else { ElementDist::Zipf(theta) };
        let w = WorkloadSpec::new(n, m)
            .unite_fraction(1.0)
            .element_dist(dist)
            .generate(0xE12 ^ (theta * 10.0) as u64);
        let rows: Vec<(&str, [f64; 5])> = vec![
            ("no-compaction", measure::<NoCompaction>(n, &w, p)),
            ("one-try", measure::<OneTrySplit>(n, &w, p)),
            ("two-try", measure::<TwoTrySplit>(n, &w, p)),
            ("halving", measure::<Halving>(n, &w, p)),
            ("compress", measure::<Compress>(n, &w, p)),
        ];
        for (name, [cok, cfail, lok, lfail, rate]) in rows {
            table.row(&[
                format!("{theta:.1}"),
                name.to_string(),
                f2(cok),
                f2(cfail),
                f2(lok),
                f2(lfail),
                f2(rate),
            ]);
        }
    }
    table.print();
    println!("\nexpected shape: failures concentrate in the link-heavy build regime and on");
    println!("skewed hot paths; their *rarity* is itself a finding — the theory must charge");
    println!("them (the cost AW ignored), but two-try keeps them a small fraction of work.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E4 — the headline: almost-linear speedup.**
//!
//! The abstract claims "almost-linear speed-up for applications in which
//! all or most of the processes can be kept busy", contrasted with
//! Anderson & Woll's "insignificant speed-up". We measure throughput
//! (million ops/second) versus thread count for the paper's structure
//! (two-try and one-try splitting), the Anderson–Woll-style rank+halving
//! baseline, and the global-lock baseline, on two phases:
//!
//! * **build** — 100% unites over a fresh universe (`m = n`): the
//!   link-CAS-heavy regime;
//! * **query** — 100% same-set probes against a sub-critical forest
//!   (`0.45·n` prior random unites keep components small, so there is no
//!   single hot root): the find-dominated regime the paper's speedup claim
//!   addresses.
//!
//! The shapes to reproduce: the wait-free structures gain throughput with
//! `p` in both phases (queries close to linearly); the lock baseline is
//! flat or degrades.
//!
//! Usage: `--n 2097152 --quick true --csv out.csv`

use concurrent_dsu::{Dsu, OneTrySplit, ShardSpec, ShardedStore, TwoTrySplit};
use dsu_baselines::{AwDsu, LockedDsu};
use dsu_harness::{run_shards, run_shards_cached, run_shards_planned, table::f2, Args, Table};
use dsu_workloads::WorkloadSpec;
use sequential_dsu::{Compaction, Linking};

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 17 } else { 1 << 21 });
    let ladder = args.thread_ladder();

    println!("E4: throughput & speedup vs p  (n = {n})");
    println!("paper: near-linear speedup for the wait-free algorithm; locks do not scale\n");

    // Build phase: m = n unites. Query phase: m = 2n same-sets after a
    // sub-critical prior build (components stay logarithmic: no hot root).
    let build = WorkloadSpec::new(n, n).unite_fraction(1.0).generate(0x0E4B);
    let prior =
        WorkloadSpec::new(n, (n as f64 * 0.45) as usize).unite_fraction(1.0).generate(0x0E4C);
    let query = WorkloadSpec::new(n, 2 * n).unite_fraction(0.0).generate(0x0E4D);

    let make_jt2 = |prebuild: bool| {
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        if prebuild {
            run_shards(&dsu, &prior, 8);
        }
        dsu
    };
    let make_jt1 = |prebuild: bool| {
        let dsu: Dsu<OneTrySplit> = Dsu::new(n);
        if prebuild {
            run_shards(&dsu, &prior, 8);
        }
        dsu
    };
    let seed = Dsu::<TwoTrySplit>::DEFAULT_SEED;
    let make_jt2_sharded = |prebuild: bool| {
        let dsu: Dsu<TwoTrySplit, ShardedStore> =
            Dsu::from_store(ShardedStore::with_spec(n, seed, ShardSpec::auto()));
        if prebuild {
            run_shards(&dsu, &prior, 8);
        }
        dsu
    };
    let make_aw = |prebuild: bool| {
        let dsu = AwDsu::new(n);
        if prebuild {
            run_shards(&dsu, &prior, 8);
        }
        dsu
    };
    let make_lock = |prebuild: bool| {
        let dsu = LockedDsu::new(n, Linking::ByRank, Compaction::Halving);
        if prebuild {
            run_shards(&dsu, &prior, 8);
        }
        dsu
    };

    let mut table = Table::new(&["phase", "structure", "p", "Mops/s", "speedup"]);
    for (phase, workload, prebuild) in [("build", &build, false), ("query", &query, true)] {
        type Runner<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
        let specs: Vec<(&str, Runner<'_>)> = vec![
            ("jt-two-try", Box::new(|p| run_shards(&make_jt2(prebuild), workload, p).mops())),
            (
                // Same structure, per-worker hot-root cache sessions: the
                // row that shows what the cache layer buys (or costs) on
                // the serial per-op path at each thread count.
                "jt-two-try-cached",
                Box::new(|p| run_shards_cached(&make_jt2(prebuild), workload, p).mops()),
            ),
            (
                // Same structure, consecutive unites buffered into bursts
                // ingested through the ingestion planner: the row that
                // shows what planner-routed ingestion buys (or costs) at
                // each thread count.
                "jt-two-try-planned",
                Box::new(|p| run_shards_planned(&make_jt2(prebuild), workload, p).mops()),
            ),
            (
                "jt-two-try-sharded",
                Box::new(|p| run_shards(&make_jt2_sharded(prebuild), workload, p).mops()),
            ),
            ("jt-one-try", Box::new(|p| run_shards(&make_jt1(prebuild), workload, p).mops())),
            ("aw-rank-halving", Box::new(|p| run_shards(&make_aw(prebuild), workload, p).mops())),
            ("global-lock", Box::new(|p| run_shards(&make_lock(prebuild), workload, p).mops())),
        ];
        let reps = args.usize("reps", if quick { 2 } else { 3 });
        for (name, run) in &specs {
            let mut p1 = None;
            for &p in &ladder {
                // Best-of-reps: throughput noise is one-sided (interference
                // only slows a run down), so max is the faithful statistic.
                let mops = (0..reps).map(|_| run(p)).fold(0.0f64, f64::max);
                let p1v = *p1.get_or_insert(mops);
                table.row(&[
                    phase.to_string(),
                    name.to_string(),
                    p.to_string(),
                    f2(mops),
                    f2(mops / p1v),
                ]);
            }
        }
    }
    table.print();
    println!("\nexpected shape: jt-* query speedup grows near-linearly with p until memory");
    println!("bandwidth saturates; build speedup grows but sublinearly (link CAS contention);");
    println!("global-lock speedup stays ≈1 or drops; aw scales but trails jt.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E3 — Theorem 5.1 vs Theorem 5.2 vs Section 4: the variant-plane
//! comparison.**
//!
//! Same sweep as E2, but over the full (find × link) variant plane and
//! both operation styles (standard and Section 6 early termination).
//! Every row labels both axes as `<find>/<link>`. The paper's ordering to
//! reproduce, in per-operation work at higher `p`, on the `random` link
//! rows:
//!
//! * `no-compaction` pays the full O(log n) path every time (Thm 4.3);
//! * `one-try` compacts but its bound carries `p²` (Thm 5.2);
//! * `two-try` has the tight bound (Thm 5.1) — expected to be the best or
//!   tied;
//! * `halving` cannot beat splitting (§3's simulation argument);
//! * early termination walks one path instead of two, shaving a constant
//!   factor.
//!
//! The link axis has no paper-side work ordering (the bounds hold for any
//! linearizable linking with increasing keys): `index` drops the side
//! permutation lookup but loses the randomized height guarantee, `rank`
//! buys shallow trees with a rank word per element ([`RankedStore`]).
//! This table measures what those trades cost in find work.
//!
//! Usage: `--n 65536 --m 131072 --reps 2 --quick true --csv out.csv`

use concurrent_dsu::{
    Compress, Dsu, DsuStore, FindPolicy, Halving, IndexLink, LinkPolicy, NoCompaction, OneTrySplit,
    RandomLink, RankLink, RankedStore, TwoTrySplit,
};
use dsu_harness::{mean, run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::{Workload, WorkloadSpec};

fn measure<F: FindPolicy, S: DsuStore, L: LinkPolicy>(
    n: usize,
    w: &Workload,
    p: usize,
    early: bool,
    reps: usize,
) -> (f64, f64, f64) {
    let mut iters = Vec::new();
    let mut casf = Vec::new();
    let mut accesses = Vec::new();
    for rep in 0..reps {
        let dsu: Dsu<F, S, L> = Dsu::with_seed(n, 0xE3_000 + rep as u64);
        let metrics = run_shards_instrumented(&dsu, w, p, early);
        let stats = metrics.stats.expect("instrumented");
        let m = w.len() as f64;
        iters.push(stats.loop_iters as f64 / m);
        casf.push(stats.compact_cas_fail as f64 / m);
        accesses.push(stats.memory_accesses() as f64 / m);
    }
    (mean(&iters), mean(&casf), mean(&accesses))
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 13 } else { 1 << 16 });
    let m = args.usize("m", 2 * n);
    let reps = args.usize("reps", 2);
    let ladder = args.thread_ladder();

    println!("E3: per-op work by (find × link) variant  (n = {n}, m = {m}, {reps} seeds)");
    println!(
        "paper: two-try ≤ one-try ≤ no-compaction in work; halving ≈ splitting [§3, Thm 5.1/5.2];"
    );
    println!("link axis trades id lookups (random) vs height guarantees (index/rank).\n");

    type Dflt = concurrent_dsu::DefaultStore;
    let mut table = Table::new(&["p", "find/link", "iters/op", "cas-fail/op", "accesses/op"]);
    for &p in &ladder {
        let w = WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xE3 ^ p as u64);
        // Rank rows run on RankedStore — the only fixed-universe layout
        // whose words carry a rank; on the others RankLink degenerates to
        // index linking and the row would be a duplicate.
        macro_rules! link_rows {
            ($f:ty, $fname:literal) => {
                [
                    (
                        concat!($fname, "/random"),
                        measure::<$f, Dflt, RandomLink>(n, &w, p, false, reps),
                    ),
                    (
                        concat!($fname, "/index"),
                        measure::<$f, Dflt, IndexLink>(n, &w, p, false, reps),
                    ),
                    (
                        concat!($fname, "/rank"),
                        measure::<$f, RankedStore, RankLink>(n, &w, p, false, reps),
                    ),
                ]
            };
        }
        let mut rows: Vec<(&str, (f64, f64, f64))> = Vec::new();
        rows.extend(link_rows!(NoCompaction, "no-compaction"));
        rows.extend(link_rows!(OneTrySplit, "one-try"));
        rows.extend(link_rows!(TwoTrySplit, "two-try"));
        rows.extend(link_rows!(Halving, "halving"));
        rows.extend(link_rows!(Compress, "compress"));
        rows.push((
            "two-try/random+early",
            measure::<TwoTrySplit, Dflt, RandomLink>(n, &w, p, true, reps),
        ));
        rows.push((
            "one-try/random+early",
            measure::<OneTrySplit, Dflt, RandomLink>(n, &w, p, true, reps),
        ));
        for (name, (it, cf, acc)) in rows {
            table.row(&[p.to_string(), name.to_string(), f2(it), f2(cf), f2(acc)]);
        }
    }
    table.print();
    println!("\nexpected shape: no-compaction worst; splitting variants close, two-try never");
    println!("worse than one-try by more than a small factor; early termination cheapest;");
    println!("link rows of one find policy within a small factor of each other.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E3 — Theorem 5.1 vs Theorem 5.2 vs Section 4: the find-variant
//! comparison.**
//!
//! Same sweep as E2, but for all four find policies and both operation
//! styles (standard and Section 6 early termination). The paper's ordering
//! to reproduce, in per-operation work at higher `p`:
//!
//! * `no-compaction` pays the full O(log n) path every time (Thm 4.3);
//! * `one-try` compacts but its bound carries `p²` (Thm 5.2);
//! * `two-try` has the tight bound (Thm 5.1) — expected to be the best or
//!   tied;
//! * `halving` cannot beat splitting (§3's simulation argument);
//! * early termination walks one path instead of two, shaving a constant
//!   factor.
//!
//! Usage: `--n 65536 --m 131072 --reps 2 --quick true --csv out.csv`

use concurrent_dsu::{Compress, Dsu, FindPolicy, Halving, NoCompaction, OneTrySplit, TwoTrySplit};
use dsu_harness::{mean, run_shards_instrumented, table::f2, Args, Table};
use dsu_workloads::{Workload, WorkloadSpec};

fn measure<F: FindPolicy>(
    n: usize,
    w: &Workload,
    p: usize,
    early: bool,
    reps: usize,
) -> (f64, f64, f64) {
    let mut iters = Vec::new();
    let mut casf = Vec::new();
    let mut accesses = Vec::new();
    for rep in 0..reps {
        let dsu: Dsu<F> = Dsu::with_seed(n, 0xE3_000 + rep as u64);
        let metrics = run_shards_instrumented(&dsu, w, p, early);
        let stats = metrics.stats.expect("instrumented");
        let m = w.len() as f64;
        iters.push(stats.loop_iters as f64 / m);
        casf.push(stats.compact_cas_fail as f64 / m);
        accesses.push(stats.memory_accesses() as f64 / m);
    }
    (mean(&iters), mean(&casf), mean(&accesses))
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 13 } else { 1 << 16 });
    let m = args.usize("m", 2 * n);
    let reps = args.usize("reps", 2);
    let ladder = args.thread_ladder();

    println!("E3: per-op work by find variant  (n = {n}, m = {m}, {reps} seeds)");
    println!(
        "paper: two-try ≤ one-try ≤ no-compaction in work; halving ≈ splitting [§3, Thm 5.1/5.2]\n"
    );

    let mut table = Table::new(&["p", "variant", "iters/op", "cas-fail/op", "accesses/op"]);
    for &p in &ladder {
        let w = WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xE3 ^ p as u64);
        let rows: Vec<(&str, (f64, f64, f64))> = vec![
            ("no-compaction", measure::<NoCompaction>(n, &w, p, false, reps)),
            ("one-try", measure::<OneTrySplit>(n, &w, p, false, reps)),
            ("two-try", measure::<TwoTrySplit>(n, &w, p, false, reps)),
            ("halving", measure::<Halving>(n, &w, p, false, reps)),
            ("compress", measure::<Compress>(n, &w, p, false, reps)),
            ("two-try+early", measure::<TwoTrySplit>(n, &w, p, true, reps)),
            ("one-try+early", measure::<OneTrySplit>(n, &w, p, true, reps)),
        ];
        for (name, (it, cf, acc)) in rows {
            table.row(&[p.to_string(), name.to_string(), f2(it), f2(cf), f2(acc)]);
        }
    }
    table.print();
    println!("\nexpected shape: no-compaction worst; splitting variants close, two-try never");
    println!("worse than one-try by more than a small factor; early termination cheapest.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

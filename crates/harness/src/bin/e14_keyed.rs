//! **E14 — keyed entity resolution over the packed core.**
//!
//! Drives the lock-free keyed layer (`KeyedDsu`: sharded CAS-claimed id
//! table in front of the growable store) with a string-keyed
//! entity-resolution trace — insert-heavy churn, recency-biased revisits —
//! sharded round-robin over `p` threads. The table reports throughput vs
//! thread count alongside the id-table health counters (probe steps per
//! key touch, segment growths, shard skew), and every run's final
//! partition is cross-checked key for key against a sequential replay on
//! the `RwLock<HashMap>` baseline — same trace, same implicit-singleton
//! semantics, so the verdicts must agree exactly.
//!
//! Usage: `--ops 400000 --fresh 0.4 --merges 0.7 --window 4096
//!         --quick true --csv out.csv`

use concurrent_dsu::{KeyedDsu, OpStats};
use dsu_baselines::LockedKeyedDsu;
use dsu_harness::{table::f2, Args, Table};
use dsu_workloads::{KeyedOp, KeyedSpec};
use std::sync::Barrier;
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let ops = args.usize("ops", if quick { 1 << 15 } else { 400_000 });
    let fresh = args.f64("fresh", 0.4);
    let merges = args.f64("merges", 0.7);
    let window = args.usize("window", 4096);
    let ladder = args.thread_ladder();

    let spec =
        KeyedSpec::new(ops).merge_fraction(merges).fresh_fraction(fresh).revisit_window(window);
    let trace = spec.generate(0xE14).into_strings("entity", 0xE14);
    println!(
        "E14: keyed entity resolution  ({ops} ops, {} distinct string keys, \
         {merges} merge fraction, {fresh} fresh fraction, window {window})",
        trace.distinct_keys
    );
    println!("lock-free sharded id table + packed core vs a sequential keyed replay\n");

    // The oracle: one sequential replay of the whole trace on the locked
    // baseline (identical keyed semantics by construction).
    let oracle: LockedKeyedDsu<String> = LockedKeyedDsu::new();
    for op in &trace.ops {
        match op {
            KeyedOp::Merge(a, b) => {
                oracle.merge_keys(a, b);
            }
            KeyedOp::SameSet(a, b) => {
                oracle.same_set(a, b);
            }
        }
    }

    let mut table =
        Table::new(&["p", "keys", "sets", "resizes", "probe/touch", "skew", "Mops/s", "speedup"]);
    let mut base = None;
    for &p in &ladder {
        let shards = trace.shard(p);
        let dsu: KeyedDsu<String> = KeyedDsu::with_seed(0xE14);
        let merged = Mutex::new(OpStats::default());
        let barrier = Barrier::new(p + 1);
        let t0 = std::thread::scope(|s| {
            for shard in &shards {
                let dsu = &dsu;
                let barrier = &barrier;
                let merged = &merged;
                s.spawn(move || {
                    let mut stats = OpStats::default();
                    barrier.wait();
                    for op in shard {
                        match op {
                            KeyedOp::Merge(a, b) => {
                                dsu.merge_keys_with(a, b, &mut stats);
                            }
                            KeyedOp::SameSet(a, b) => {
                                dsu.same_set_with(a, b, &mut stats);
                            }
                        }
                    }
                    merged.lock().unwrap().merge(&stats);
                });
            }
            let t0 = Instant::now();
            barrier.wait();
            t0
        });
        let elapsed = t0.elapsed();
        let stats = merged.into_inner().unwrap();
        // Two key resolutions per op, so probe cost is reported per touch.
        let touches = (2 * ops) as f64;
        let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
        let b = *base.get_or_insert(mops);
        table.row(&[
            p.to_string(),
            dsu.key_count().to_string(),
            dsu.set_count().to_string(),
            dsu.id_table_resizes().to_string(),
            f2(stats.key_probe_steps as f64 / touches),
            f2(dsu.key_skew().imbalance),
            f2(mops),
            f2(mops / b),
        ]);

        // Cross-check: the concurrent run and the sequential replay agree
        // on every key's id-existence, the partition, and the counts.
        assert_eq!(dsu.key_count(), oracle.key_count(), "p = {p}: key count mismatch");
        assert_eq!(dsu.set_count(), oracle.set_count(), "p = {p}: set count mismatch");
        assert_eq!(stats.keys_inserted as usize, dsu.key_count(), "p = {p}: claim attribution");
        for op in &trace.ops {
            let (a, b) = op.keys();
            assert_eq!(dsu.same_set(a, b), oracle.same_set(a, b), "p = {p}: verdict mismatch");
        }
    }
    table.print();
    println!("\nexpected shape: verdicts match the sequential replay at every p; probe/touch");
    println!("stays ~log2(keys)/segments flat as threads race the same id table.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E16 — the chaos-recovery contract of the epoch layer.**
//!
//! E13 proves the operations stay linearizable while a `FaultyStore`
//! injects adversity; this experiment proves the *versioning* machinery
//! keeps its promises under the same adversity. Per fault seed and
//! injection rate, each history runs the full speculative-batch life
//! cycle on a `VersionedDsu<_, FaultyStore<EpochStore>>`:
//!
//! 1. **Committed phase** — threads run recorded unites/queries (per-
//!    thread `RetryBudget` sinks, shared `SeqCst` clock); the history must
//!    pass the Wing–Gong checker.
//! 2. **Quiescent capture** — raw store words + the sequential oracle
//!    partition (a `NaiveDsu` fed every committed unite edge; edge order
//!    is irrelevant to the final partition, so the concurrent phase and
//!    the oracle must land on the same one).
//! 3. **Doomed phase** — snapshot, then threads hammer the structure with
//!    a second storm of faulted operations (time-travel reads racing the
//!    writers), then the batch "fails" and rolls back.
//! 4. **The contract** — post-rollback words are *bit-identical* to the
//!    pre-snapshot capture, the partition still equals the sequential
//!    oracle's, and the committed history still checks linearizable.
//!
//! A speculative-batch cell drives the same contract through
//! `try_unite_batch` (validator rejects → `RolledBack` → bit-identity),
//! and a **canary** cell skips the rollback and demands the bit-identity
//! check *fail* — proving the apparatus can still see a contaminated
//! forest, not merely bless everything.
//!
//! Usage: `--histories 60 --threads 4 --ops-per-proc 8 --n 12
//!         --seeds 6 --rates 0.1,0.3 --csv out.csv --quick true`

use concurrent_dsu::epoch::EpochFork;
use concurrent_dsu::order::splitmix64;
use concurrent_dsu::{
    BatchOutcome, EpochStore, FaultPlan, FaultyStore, GrowableDsu, GrowableStore, OpStats,
    RetryBudget, TwoTrySplit, VersionedDsu,
};
use dsu_harness::{Args, Table};
use linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec, HistoryRecorder};
use sequential_dsu::{NaiveDsu, Partition};

type ChaosDsu = VersionedDsu<TwoTrySplit, FaultyStore<EpochStore>>;

fn chaos_dsu(n: usize, seed: u64, rate: f64) -> ChaosDsu {
    let store = FaultyStore::with_plan(
        <EpochStore as GrowableStore>::with_seed(seed),
        FaultPlan::rate(seed, rate),
    );
    let dsu: ChaosDsu = VersionedDsu::from_dsu(GrowableDsu::from_store(store));
    for _ in 0..n {
        dsu.make_set();
    }
    dsu
}

struct CellOutcome {
    linearizable: usize,
    bit_identical: usize,
    oracle_equal: usize,
    histories: usize,
    faults: u64,
    stats: OpStats,
}

/// One full life cycle per history: committed recorded phase, capture,
/// doomed phase, rollback, contract checks. `rollback` is the canary
/// switch — when `false` the doomed storm is left in place and the
/// bit-identity check is *expected* to fail.
fn run_cell(
    histories: usize,
    threads: usize,
    ops_per_proc: usize,
    n: usize,
    base_seed: u64,
    rate: f64,
    rollback: bool,
) -> CellOutcome {
    let budget = (1000.0 * ops_per_proc as f64 * rate / (1.0 - rate)).ceil() as u64 + 1000;
    let mut out = CellOutcome {
        linearizable: 0,
        bit_identical: 0,
        oracle_equal: 0,
        histories,
        faults: 0,
        stats: OpStats::default(),
    };
    for h in 0..histories {
        let seed = base_seed ^ (h as u64 * 6151 + 3);
        let mut dsu = chaos_dsu(n, seed, rate);

        // Phase 1: committed, recorded, concurrent.
        let recorder = HistoryRecorder::new();
        let barrier = std::sync::Barrier::new(threads);
        let mut history: Vec<CompletedOp<DsuOp>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (dsu, recorder, barrier) = (&dsu, &recorder, &barrier);
                    s.spawn(move || {
                        let mut sink = RetryBudget::new("e16 committed thread", budget);
                        barrier.wait();
                        let ops: Vec<CompletedOp<DsuOp>> = (0..ops_per_proc)
                            .map(|i| {
                                let z = splitmix64(seed ^ ((t as u64) << 32) ^ i as u64);
                                let (x, y) = ((z >> 8) as usize % n, (z >> 24) as usize % n);
                                if z.is_multiple_of(4) {
                                    recorder.record(DsuOp::SameSet(x, y), || {
                                        dsu.dsu().same_set_with(x, y, &mut sink)
                                    })
                                } else {
                                    recorder.record(DsuOp::Unite(x, y), || {
                                        dsu.dsu().unite_with(x, y, &mut sink)
                                    })
                                }
                            })
                            .collect();
                        (ops, sink.into_stats())
                    })
                })
                .collect();
            for handle in handles {
                let (ops, stats) = handle.join().unwrap();
                history.extend(ops);
                out.stats.merge(&stats);
            }
        });

        // Phase 2: quiescent capture — words and the sequential oracle.
        let committed_words = dsu.dsu().store().raw_words(n);
        let mut oracle = NaiveDsu::new(n);
        for op in &history {
            if let DsuOp::Unite(x, y) = op.op {
                oracle.unite(x, y);
            }
        }

        // Phase 3: the doomed storm behind a snapshot.
        let snap = dsu.snapshot();
        std::thread::scope(|s| {
            for t in 0..threads {
                let dsu = &dsu;
                s.spawn(move || {
                    let mut sink = RetryBudget::new("e16 doomed thread", budget * 4);
                    for i in 0..ops_per_proc as u64 * 4 {
                        let z = splitmix64(seed ^ 0xD00D ^ ((t as u64) << 40) ^ i);
                        let (x, y) = ((z >> 8) as usize % n, (z >> 24) as usize % n);
                        match z % 4 {
                            0 => {
                                let _ = dsu.same_set_at(snap, x, y);
                            }
                            _ => {
                                dsu.dsu().unite_with(x, y, &mut sink);
                            }
                        }
                    }
                });
            }
        });
        if rollback {
            dsu.rollback(snap);
        }
        dsu.drop_snapshot(snap);

        // Phase 4: the contract.
        out.faults += dsu.dsu().store().fault_report().total();
        if dsu.dsu().store().raw_words(n) == committed_words {
            out.bit_identical += 1;
        }
        if Partition::from_labels(&dsu.labels_snapshot()) == oracle.partition() {
            out.oracle_equal += 1;
        }
        if check_linearizable(&DsuSpec::new(n), &history).is_ok() {
            out.linearizable += 1;
        }
    }
    out
}

/// The `try_unite_batch` shape of the same contract: a validator-rejected
/// speculative batch under injection must report `RolledBack` and leave
/// the words bit-identical. Returns (rolled_back_and_identical, total).
fn speculative_cell(histories: usize, n: usize, base_seed: u64, rate: f64) -> (usize, usize) {
    let mut ok = 0;
    for h in 0..histories {
        let seed = base_seed ^ (h as u64).wrapping_mul(0x9E37_79B9);
        let mut dsu = chaos_dsu(n, seed, rate);
        for i in 0..n / 2 {
            dsu.unite(i, (i * 7 + 1) % n);
        }
        let words = dsu.dsu().store().raw_words(n);
        let edges: Vec<(usize, usize)> = (0..n)
            .map(|i| {
                let z = splitmix64(seed ^ 0xBA7C ^ i as u64);
                ((z as usize) % n, ((z >> 32) as usize) % n)
            })
            .collect();
        let outcome = dsu.try_unite_batch(&edges, |_, _| false);
        if outcome == BatchOutcome::RolledBack && dsu.dsu().store().raw_words(n) == words {
            ok += 1;
        }
    }
    (ok, histories)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let histories = args.usize("histories", if quick { 20 } else { 60 });
    let threads = args.usize("threads", 4);
    let ops_per_proc = args.usize("ops-per-proc", 8);
    let n = args.usize("n", 12);
    let seeds = args.usize("seeds", if quick { 3 } else { 6 });
    let rates: Vec<f64> = args
        .get("rates")
        .map(|s| s.split(',').map(|r| r.trim().parse().expect("rate")).collect())
        .unwrap_or_else(|| vec![0.1, 0.3]);

    assert!(
        threads * ops_per_proc <= 64,
        "committed history size {} exceeds the checker's 64-op bound",
        threads * ops_per_proc
    );
    println!(
        "E16: epoch rollback under chaos — {seeds} fault seeds × rates {rates:?} × \
         {histories} histories ({threads} threads × {ops_per_proc} committed ops, n = {n})"
    );
    println!(
        "contract: committed history linearizable, doomed storm rolls back bit-identically, \
         post-rollback partition equals the sequential oracle\n"
    );

    let mut table = Table::new(&[
        "cell",
        "seed",
        "rate",
        "histories",
        "linearizable",
        "bit_identical",
        "oracle_equal",
        "faults",
    ]);
    let mut all_ok = true;
    for s in 0..seeds {
        let sweep_seed = 0xE16_0000 + s as u64 * 7919;
        for &rate in &rates {
            let cell = run_cell(histories, threads, ops_per_proc, n, sweep_seed, rate, true);
            table.row(&[
                "rollback".to_string(),
                format!("{sweep_seed:#x}"),
                format!("{rate:.2}"),
                cell.histories.to_string(),
                cell.linearizable.to_string(),
                cell.bit_identical.to_string(),
                cell.oracle_equal.to_string(),
                cell.faults.to_string(),
            ]);
            all_ok &= cell.linearizable == cell.histories
                && cell.bit_identical == cell.histories
                && cell.oracle_equal == cell.histories;
            assert!(
                rate == 0.0 || cell.faults > 0,
                "rate {rate} injected nothing — the sweep is not exercising chaos"
            );
        }
    }

    // The speculative-batch route, per seed, at the heaviest rate.
    let heavy = rates.iter().copied().fold(0.0f64, f64::max);
    let (spec_ok, spec_total) = speculative_cell(histories * seeds, n.max(16), 0x5BEC, heavy);
    table.row(&[
        "try_unite_batch".to_string(),
        "sweep".to_string(),
        format!("{heavy:.2}"),
        spec_total.to_string(),
        "-".to_string(),
        spec_ok.to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    // The canary: skip the rollback and demand contamination is *seen*.
    let canary = run_cell(histories.max(20), threads, ops_per_proc, n, 0xBADC0DE, 0.2, false);
    table.row(&[
        "CANARY(no-rollback)".to_string(),
        "-".to_string(),
        "0.20".to_string(),
        canary.histories.to_string(),
        canary.linearizable.to_string(),
        canary.bit_identical.to_string(),
        canary.oracle_equal.to_string(),
        canary.faults.to_string(),
    ]);

    table.print();
    println!(
        "\nresult: rollback cells all-green = {all_ok}; speculative {spec_ok}/{spec_total}; \
         canary saw contamination in {}/{} histories (must be > 0).",
        canary.histories - canary.bit_identical,
        canary.histories
    );
    assert!(all_ok, "a rollback cell broke the contract — see the table");
    assert_eq!(spec_ok, spec_total, "a rejected speculative batch left residue");
    assert!(
        canary.bit_identical < canary.histories,
        "the canary rolled nothing back yet the words came out identical: \
         the bit-identity check has lost its teeth"
    );
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! **E6 — Section 3: two halving processes in lockstep simulate one
//! splitting process.**
//!
//! The exact construction from the paper, on the APRAM simulator: a path
//! of `k` nodes; run (a) two halving finds from nodes 0 and 1 in strict
//! alternation, and (b) one splitting find from node 0. The claim: the
//! final memories are *identical*, and the halving pair performs as many
//! pointer updates as the splitting pass — hence "halving is not superior
//! to splitting in the concurrent setting".
//!
//! Usage: `--max-k 65536 --csv out.csv`

use apram_dsu::lockstep_halving_vs_splitting;
use dsu_harness::{Args, Table};

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let max_k = args.usize("max-k", if quick { 1 << 12 } else { 1 << 16 });

    println!("E6: lockstep halving pair vs single splitting find on a k-path");
    println!("paper §3: identical pointer updates — halving cannot beat splitting\n");

    let mut table = Table::new(&[
        "k",
        "memories equal",
        "updates (halving pair)",
        "updates (splitting)",
        "steps (pair)",
        "steps (split)",
    ]);
    let mut k = 8usize;
    let mut all_equal = true;
    while k <= max_k {
        let cmp = lockstep_halving_vs_splitting(k);
        all_equal &= cmp.memories_match();
        table.row(&[
            k.to_string(),
            cmp.memories_match().to_string(),
            cmp.halving_updates.to_string(),
            cmp.splitting_updates.to_string(),
            cmp.halving_steps.to_string(),
            cmp.splitting_steps.to_string(),
        ]);
        k *= 4;
    }
    table.print();
    println!(
        "\nresult: {}",
        if all_equal {
            "EXACT — every k produced identical memories and update counts (the §3 claim)."
        } else {
            "MISMATCH — the §3 construction did not reproduce; investigate."
        }
    );
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

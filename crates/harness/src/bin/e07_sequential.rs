//! **E7 — Section 2: the twelve sequential algorithms.**
//!
//! Every combination of {size, rank, randomized} linking with {none,
//! halving, splitting, compression} compaction, on random workloads. The
//! paper (citing Tarjan–van Leeuwen and Goel et al.) gives all nine
//! compaction-bearing variants the bound `O(m α(n, m/n))`; the
//! no-compaction rows pay `O(log n)` per find and serve as the contrast.
//! The table reports parent-pointer reads per operation (the work proxy),
//! pointer updates, wall-clock time, and the predicted `α(n, m/n)`.
//!
//! Usage: `--n 65536 --ratios 1,4,16 --quick true --csv out.csv`

use dsu_harness::{table::f2, Args, Table};
use dsu_workloads::{Op, WorkloadSpec};
use sequential_dsu::{alpha, SeqDsu, ALL_VARIANTS};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 16 });
    let ratios: Vec<usize> = args
        .get("ratios")
        .map(|s| s.split(',').map(|r| r.trim().parse().expect("ratio")).collect())
        .unwrap_or_else(|| vec![1, 4, 16]);

    println!("E7: sequential variants  (n = {n}; m/n swept)");
    println!("paper §2: all nine linking×compaction combos run in O(m α(n, m/n))\n");

    let mut table =
        Table::new(&["m/n", "linking", "compaction", "reads/op", "updates/op", "ms", "α(n,m/n)"]);
    for &ratio in &ratios {
        let m = n * ratio;
        let w = WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xE7 ^ ratio as u64);
        let predicted = alpha(n as u64, ratio as f64);
        for (linking, compaction) in ALL_VARIANTS {
            let mut dsu = SeqDsu::with_seed(n, linking, compaction, 0xE7);
            let start = Instant::now();
            for &op in &w.ops {
                match op {
                    Op::Unite(x, y) => {
                        dsu.unite(x, y);
                    }
                    Op::SameSet(x, y) => {
                        dsu.same_set(x, y);
                    }
                }
            }
            let elapsed = start.elapsed();
            let stats = dsu.stats();
            table.row(&[
                ratio.to_string(),
                linking.to_string(),
                compaction.to_string(),
                f2(stats.parent_reads as f64 / m as f64),
                f2(stats.pointer_updates as f64 / m as f64),
                f2(elapsed.as_secs_f64() * 1e3),
                predicted.to_string(),
            ]);
        }
    }
    table.print();
    println!("\nexpected shape: compaction rows flat in m/n and near α; no-compaction rows");
    println!("visibly higher reads/op; the three linking rules within a compaction are close.");
    if let Some(path) = args.get("csv") {
        table.write_csv(path).expect("write csv");
    }
}

//! Sequential disjoint-set-union baselines.
//!
//! Section 2 of Jayanti & Tarjan (PODC 2016) reviews the classical sequential
//! solutions to the union-find problem: a compressed forest combined with one
//! of three *linking* rules (by size, by rank, or randomized) and one of
//! three *compaction* rules (compression, splitting, or halving), every
//! combination running in `O(m α(n, m/n))` time. This crate implements all of
//! them — plus the trivial no-compaction walk, giving twelve variants — with
//! operation counting, so the concurrent algorithms in `concurrent-dsu`
//! can be compared against the exact baselines the paper refers to.
//!
//! It also provides:
//!
//! * [`ackermann`](mod@crate::ackermann) — Ackermann's function `A_k(j)` and the
//!   paper's two-parameter functional inverse `α(n, d)`, used to print the
//!   "predicted" columns in the experiment harness;
//! * [`Partition`] — a canonical set-partition value used as the correctness
//!   oracle across the whole workspace.
//!
//! # Example
//!
//! ```
//! use sequential_dsu::{SeqDsu, Linking, Compaction};
//!
//! let mut dsu = SeqDsu::new(8, Linking::ByRank, Compaction::Splitting);
//! assert!(dsu.unite(0, 1));
//! assert!(dsu.unite(1, 2));
//! assert!(dsu.same_set(0, 2));
//! assert!(!dsu.same_set(0, 7));
//! assert_eq!(dsu.set_count(), 6);
//! ```

pub mod ackermann;
pub mod dsu;
pub mod oracle;
pub mod partition;
pub mod potential;

pub use ackermann::{ackermann, alpha, gklt_rank, one_try_work_bound, two_try_work_bound};
pub use dsu::{Compaction, Linking, SeqDsu, SeqStats};
pub use oracle::NaiveDsu;
pub use partition::Partition;
pub use potential::Levels;

/// All twelve `(Linking, Compaction)` combinations, in a fixed report order.
///
/// Handy for exhaustive tests and for the sequential comparison experiment
/// (E7): `Linking` varies slowest so the table groups by linking rule.
pub const ALL_VARIANTS: [(Linking, Compaction); 12] = [
    (Linking::BySize, Compaction::None),
    (Linking::BySize, Compaction::Halving),
    (Linking::BySize, Compaction::Splitting),
    (Linking::BySize, Compaction::Compression),
    (Linking::ByRank, Compaction::None),
    (Linking::ByRank, Compaction::Halving),
    (Linking::ByRank, Compaction::Splitting),
    (Linking::ByRank, Compaction::Compression),
    (Linking::Randomized, Compaction::None),
    (Linking::Randomized, Compaction::Halving),
    (Linking::Randomized, Compaction::Splitting),
    (Linking::Randomized, Compaction::Compression),
];

//! A brutally simple union-find used as a test oracle.
//!
//! [`NaiveDsu`] stores an explicit label per element and relabels an entire
//! set on every union — `O(n)` per operation, obviously correct, and immune
//! to the tree-manipulation bugs the real implementations could share. All
//! property tests in the workspace compare against it.

use crate::Partition;

/// Union-find by exhaustive relabeling. `O(n)` per `unite`, `O(1)` per
/// `same_set`; use only in tests and small experiments.
///
/// # Example
///
/// ```
/// use sequential_dsu::NaiveDsu;
///
/// let mut dsu = NaiveDsu::new(3);
/// assert!(dsu.unite(0, 2));
/// assert!(dsu.same_set(0, 2));
/// assert!(!dsu.same_set(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveDsu {
    labels: Vec<usize>,
    sets: usize,
}

impl NaiveDsu {
    /// Creates `n` singletons.
    pub fn new(n: usize) -> Self {
        NaiveDsu { labels: (0..n).collect(), sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// `true` iff `x` and `y` share a set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.labels[x] == self.labels[y]
    }

    /// Unites the sets of `x` and `y`; `true` iff they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&mut self, x: usize, y: usize) -> bool {
        let (from, to) = (self.labels[x], self.labels[y]);
        if from == to {
            return false;
        }
        // Relabel the smaller-labeled set into the other to keep labels
        // stable-ish; the choice does not matter for correctness.
        for l in &mut self.labels {
            if *l == from {
                *l = to;
            }
        }
        self.sets -= 1;
        true
    }

    /// The canonical partition this oracle represents.
    pub fn partition(&self) -> Partition {
        // NaiveDsu labels are always idempotent representatives: an
        // element's label is itself relabeled together with the set.
        Partition::from_labels(&self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compaction, Linking, SeqDsu, ALL_VARIANTS};
    use proptest::prelude::*;

    #[test]
    fn oracle_basics() {
        let mut dsu = NaiveDsu::new(4);
        assert_eq!(dsu.set_count(), 4);
        assert!(dsu.unite(0, 1));
        assert!(dsu.unite(2, 3));
        assert!(!dsu.unite(1, 0));
        assert_eq!(dsu.set_count(), 2);
        assert!(dsu.same_set(0, 1));
        assert!(!dsu.same_set(1, 2));
        assert!(dsu.unite(0, 3));
        assert_eq!(dsu.set_count(), 1);
    }

    #[test]
    fn oracle_partition_is_canonical() {
        let mut dsu = NaiveDsu::new(5);
        dsu.unite(4, 0);
        dsu.unite(1, 3);
        let p = dsu.partition();
        assert_eq!(p.label_of(4), 0);
        assert_eq!(p.label_of(3), 1);
        assert_eq!(p.set_count(), 3);
    }

    /// An arbitrary operation for property tests over DSU semantics.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Unite(usize, usize),
        SameSet(usize, usize),
    }

    fn ops_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            (0..n, 0..n, prop::bool::ANY).prop_map(|(x, y, is_unite)| {
                if is_unite {
                    Op::Unite(x, y)
                } else {
                    Op::SameSet(x, y)
                }
            }),
            0..max_len,
        )
    }

    proptest! {
        /// Every one of the twelve sequential variants agrees with the naive
        /// oracle on every operation's return value and on the final
        /// partition.
        #[test]
        fn all_variants_match_oracle(ops in ops_strategy(24, 120), seed in any::<u64>()) {
            for (linking, compaction) in ALL_VARIANTS {
                let mut oracle = NaiveDsu::new(24);
                let mut dsu = SeqDsu::with_seed(24, linking, compaction, seed);
                for &op in &ops {
                    match op {
                        Op::Unite(x, y) => {
                            prop_assert_eq!(dsu.unite(x, y), oracle.unite(x, y));
                        }
                        Op::SameSet(x, y) => {
                            prop_assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y));
                        }
                    }
                }
                prop_assert_eq!(dsu.set_count(), oracle.set_count());
                prop_assert_eq!(dsu.partition(), oracle.partition());
            }
        }

        /// Unions only coarsen: the partition after a prefix of operations
        /// refines the partition after the whole sequence.
        #[test]
        fn partitions_only_coarsen(ops in ops_strategy(16, 60)) {
            let mut dsu = SeqDsu::new(16, Linking::ByRank, Compaction::Splitting);
            let mut previous = dsu.partition();
            for &op in &ops {
                if let Op::Unite(x, y) = op {
                    dsu.unite(x, y);
                }
                let current = dsu.partition();
                prop_assert!(previous.refines(&current));
                previous = current;
            }
        }

        /// set_count always equals n minus the number of successful links.
        #[test]
        fn set_count_tracks_links(ops in ops_strategy(16, 60)) {
            let mut dsu = SeqDsu::new(16, Linking::BySize, Compaction::Halving);
            for &op in &ops {
                if let Op::Unite(x, y) = op {
                    dsu.unite(x, y);
                }
            }
            prop_assert_eq!(dsu.set_count() as u64, 16 - dsu.stats().links);
        }
    }
}

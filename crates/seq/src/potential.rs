//! The Section 5 accounting machinery: Goel–Khanna–Larkin–Tarjan levels,
//! indices, and counts.
//!
//! Theorem 5.1's potential argument assigns every node `x` (with GKLT rank
//! `x.r` and parent rank `x.parent.r`) a *level*, *index*, and *count*:
//!
//! ```text
//! b(i, k)  = min { j ≥ 0 | A_i(j) > k }                       (index fn)
//! a(k, j)  = min({ α(k, d) + 1 } ∪ { i ≤ α(k, d) | A_i(b(i, k)) > j })
//! x.a      = a(x.r, x.parent.r)                               (level)
//! x.b      = b(x.a − 1, x.parent.r)   if x.a > 0, else 0      (index)
//! x.c      = x.a · (x.r + 2) + x.b                            (count)
//! ```
//!
//! The proof rests on six properties of these quantities under splitting
//! ((i)–(vi) in the paper, inherited from GKLT '14). They are *proved*
//! there; here they are implemented so the test suite can **check them
//! empirically** on actual executions — a mechanical audit of the
//! reproduction's analysis layer, and the ingredient a reader needs to
//! follow the Theorem 5.1 proof quantitatively.

use crate::ackermann::{ackermann, alpha};

/// The level/index/count functions for a fixed density parameter
/// `d = m/(np)` (Theorem 5.1 chooses it this way).
#[derive(Debug, Clone, Copy)]
pub struct Levels {
    d: f64,
}

impl Levels {
    /// Accounting functions with density parameter `d ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or NaN.
    pub fn new(d: f64) -> Self {
        assert!(d >= 0.0, "density parameter must be non-negative");
        Levels { d }
    }

    /// The density parameter.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// `b(i, k) = min { j ≥ 0 | A_i(j) > k }`.
    pub fn index_b(i: u32, k: u64) -> u64 {
        match i {
            // A_0(j) = j + 1 > k  ⇔  j ≥ k.
            0 => k,
            // A_1(j) = j + 2 > k  ⇔  j ≥ k − 1.
            1 => k.saturating_sub(1),
            _ => {
                let mut j = 0;
                loop {
                    match ackermann(i, j) {
                        None => return j, // beyond u64 ⇒ > k
                        Some(v) if v > k => return j,
                        _ => j += 1,
                    }
                }
            }
        }
    }

    /// The level `a(k, j)` of a node of rank `k` whose parent has rank `j`.
    pub fn level(&self, k: u64, j: u64) -> u32 {
        let cap = alpha(k, self.d);
        for i in 0..=cap {
            let exceeds = match ackermann(i, Self::index_b(i, k)) {
                None => true,
                Some(v) => v > j,
            };
            if exceeds {
                return i;
            }
        }
        cap + 1
    }

    /// The index `x.b` of a node of rank `k` with parent rank `j`.
    pub fn index(&self, k: u64, j: u64) -> u64 {
        let a = self.level(k, j);
        if a == 0 {
            0
        } else {
            Self::index_b(a - 1, j_cap(j))
        }
    }

    /// The count `x.c = x.a (x.r + 2) + x.b`.
    pub fn count(&self, k: u64, j: u64) -> u64 {
        self.level(k, j) as u64 * (k + 2) + self.index(k, j)
    }
}

/// The paper's `x.b = b(x.a − 1, x.parent.r)` uses the parent rank
/// directly; ranks are at most `⌊lg n⌋` so no capping is mathematically
/// needed — this hook exists only to make the intent explicit at the call
/// site.
fn j_cap(j: u64) -> u64 {
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ackermann::gklt_rank;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn index_b_is_minimal() {
        for i in 0..=4u32 {
            for k in 0..50u64 {
                let j = Levels::index_b(i, k);
                // A_i(j) > k …
                match ackermann(i, j) {
                    None => {}
                    Some(v) => assert!(v > k, "A_{i}({j}) = {v} must exceed {k}"),
                }
                // … and j is minimal.
                if j > 0 {
                    let below = ackermann(i, j - 1).expect("small value");
                    assert!(below <= k, "A_{i}({}) = {below} must be <= {k}", j - 1);
                }
            }
        }
    }

    #[test]
    fn level_zero_iff_equal_ranks() {
        // Property (iv): a node's level is 0 iff it has the same rank as
        // its parent.
        let levels = Levels::new(1.0);
        for k in 0..20u64 {
            for j in k..25u64 {
                // Ranks are non-decreasing along paths, so j >= k.
                let a = levels.level(k, j);
                if j == k {
                    assert_eq!(a, 0, "a({k},{k}) must be 0");
                } else {
                    assert!(a >= 1, "a({k},{j}) must be positive");
                }
            }
        }
    }

    #[test]
    fn level_is_bounded_and_monotone_in_parent_rank() {
        // Property (i): 0 <= level <= α(n, d) + 1 and, for a fixed node,
        // the level never decreases as the parent's rank grows.
        for &d in &[0.0, 0.5, 1.0, 4.0] {
            let levels = Levels::new(d);
            for k in 0..16u64 {
                let cap = alpha(1 << 20, d) + 1;
                let mut prev = 0;
                for j in k..40u64 {
                    let a = levels.level(k, j);
                    assert!(a <= cap, "a({k},{j}) = {a} above cap {cap} (d = {d})");
                    assert!(a >= prev, "level decreased as parent rank grew");
                    prev = a;
                }
            }
        }
    }

    #[test]
    fn count_is_monotone_in_parent_rank() {
        // Property (ii) specialized: along a node's lifetime its parent's
        // rank only grows (parents are replaced by ancestors of
        // no-smaller rank), so count must be non-decreasing in j.
        for &d in &[0.5, 2.0] {
            let levels = Levels::new(d);
            for k in 0..12u64 {
                let mut prev = 0;
                for j in k..40u64 {
                    let c = levels.count(k, j);
                    assert!(
                        c >= prev,
                        "count decreased: c({k},{}) = {prev} -> c({k},{j}) = {c}",
                        j - 1
                    );
                    prev = c;
                }
            }
        }
    }

    #[test]
    fn level_increase_implies_count_increase() {
        // Property (iii): if the level increases, the count increases at
        // least as much.
        let levels = Levels::new(1.0);
        for k in 0..12u64 {
            for j1 in k..30u64 {
                for j2 in j1..30u64 {
                    let (a1, a2) = (levels.level(k, j1), levels.level(k, j2));
                    let (c1, c2) = (levels.count(k, j1), levels.count(k, j2));
                    if a2 > a1 {
                        assert!(
                            c2 >= c1 + (a2 - a1) as u64,
                            "k={k}: a {a1}->{a2} but c {c1}->{c2}"
                        );
                    }
                }
            }
        }
    }

    /// Property (vi), validated on real splitting executions — in its
    /// **cap-aware** form. The paper states (vi) for the regime its proof
    /// uses it in: while a node still carries potential, i.e. while its
    /// level is below the per-rank cap `α(x.r, d) + 1`. A level-saturated
    /// node (e.g. rank 0 under a much larger-ranked parent) cannot raise
    /// its level past its own cap even if its parent's level is higher —
    /// but such a node's potential term `max{0, (α(x.r,d)+1)(x.r+2)+d+1−x.c}`
    /// is already 0, so the accounting never charges it. We therefore
    /// check: level clause with the target clamped at the cap, and the
    /// count clause only below the cap.
    #[test]
    fn property_vi_on_real_splitting_runs() {
        let n = 256usize;
        let mut rng = ChaCha12Rng::seed_from_u64(0x6157);
        // Random node order: ids are a permutation; ranks per GKLT.
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.shuffle(&mut rng);
        let rank = |x: usize| gklt_rank(n as u64, ids[x]) as u64;
        let levels = Levels::new(1.0);

        let mut parent: Vec<usize> = (0..n).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);

        // Build with unions interleaved with splitting finds, checking the
        // property at every pointer update.
        let check_update = |parent: &[usize], u: usize, w: usize| {
            let v = parent[u];
            if u == v || v == w {
                return;
            }
            let (ru, rv, rw) = (rank(u), rank(v), rank(w));
            let cap_u = alpha(ru, levels.d()) + 1;
            let ua = levels.level(ru, rv);
            let va = levels.level(rv, rank(parent[v]).max(rv));
            let new_ua = levels.level(ru, rw);
            let (uc, new_uc) = (levels.count(ru, rv), levels.count(ru, rw));
            if ua >= 1 && ua <= va && ua < cap_u {
                assert!(
                    new_uc > uc,
                    "property (vi) count clause failed: rank {ru}->{rv}->{rw}, \
                     a {ua} (cap {cap_u}), c {uc}->{new_uc}"
                );
            }
            if ua < va {
                assert!(
                    new_ua >= va.min(cap_u),
                    "property (vi) level clause failed: rank {ru}->{rv}->{rw}, \
                     a {ua}->{new_ua}, parent a {va}, cap {cap_u}"
                );
            }
        };

        let find_splitting = |parent: &mut Vec<usize>, x: usize| -> usize {
            let mut u = x;
            loop {
                let v = parent[u];
                let w = parent[v];
                if v == w {
                    return v;
                }
                check_update(parent, u, w);
                parent[u] = w;
                u = v;
            }
        };

        for i in 1..n {
            let a = order[i];
            let b = order[i - 1];
            let ra = find_splitting(&mut parent, a);
            let rb = find_splitting(&mut parent, b);
            if ra != rb {
                // Randomized linking: smaller id under larger.
                if ids[ra] < ids[rb] {
                    parent[ra] = rb;
                } else {
                    parent[rb] = ra;
                }
            }
        }
        // Post-run queries keep splitting; property still must hold.
        for x in 0..n {
            find_splitting(&mut parent, x);
        }
    }

    #[test]
    fn accessors() {
        let levels = Levels::new(2.5);
        assert_eq!(levels.d(), 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_density_rejected() {
        Levels::new(-1.0);
    }
}

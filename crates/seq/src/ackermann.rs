//! Ackermann's function and the paper's functional inverse `α(n, d)`.
//!
//! Section 2 of the paper defines (a variant of) Ackermann's function by
//!
//! ```text
//! A_0(j) = j + 1
//! A_k(0) = A_{k-1}(1)                for k > 0
//! A_k(j) = A_{k-1}(A_k(j - 1))       for k > 0, j > 0
//! ```
//!
//! and, for a non-negative integer `n` and non-negative real `d`,
//!
//! ```text
//! α(n, d) = min { i > 0 | A_i(⌊d⌋) > n }.
//! ```
//!
//! The first few rows have closed forms, which we use both for speed and as
//! test oracles:
//!
//! ```text
//! A_1(j) = j + 2
//! A_2(j) = 2j + 3
//! A_3(j) = 2^(j+3) - 3
//! ```
//!
//! `A_4` already leaves `u64` at `j = 2` (`A_4(2) = 2^65536 - 3`), so
//! [`ackermann`] returns `None` to mean "larger than every `u64`", which is
//! all the inverse computation needs.

/// Evaluates Ackermann's function `A_k(j)` as defined in the paper.
///
/// Returns `None` when the value exceeds `u64::MAX`; since `α` only ever asks
/// whether `A_i(⌊d⌋) > n` for `n: u64`, an overflow answers the comparison.
///
/// # Examples
///
/// ```
/// use sequential_dsu::ackermann;
/// assert_eq!(ackermann(0, 10), Some(11));
/// assert_eq!(ackermann(1, 10), Some(12));
/// assert_eq!(ackermann(2, 10), Some(23));
/// assert_eq!(ackermann(3, 2), Some(29)); // 2^5 - 3
/// assert_eq!(ackermann(4, 1), Some(65533));
/// assert_eq!(ackermann(4, 2), None); // 2^65536 - 3
/// ```
pub fn ackermann(k: u32, j: u64) -> Option<u64> {
    match k {
        0 => j.checked_add(1),
        1 => j.checked_add(2),
        2 => j.checked_mul(2).and_then(|v| v.checked_add(3)),
        3 => {
            // 2^(j+3) - 3; the j + 3 = 64 case still fits in u64.
            let shift = j.checked_add(3)?;
            match shift.cmp(&64) {
                std::cmp::Ordering::Less => Some((1u64 << shift) - 3),
                std::cmp::Ordering::Equal => Some(u64::MAX - 2),
                std::cmp::Ordering::Greater => None,
            }
        }
        _ => {
            // A_k(j) = A_{k-1}(A_k(j-1)), A_k(0) = A_{k-1}(1).
            let mut value = ackermann(k - 1, 1)?;
            for _ in 0..j {
                value = ackermann(k - 1, value)?;
            }
            Some(value)
        }
    }
}

/// The paper's two-parameter inverse Ackermann function `α(n, d)`.
///
/// `α(n, d) = min { i > 0 | A_i(⌊d⌋) > n }`. For every feasible input the
/// answer is at most 6 (`A_5(0) = 65533` and `A_6(0)` dwarfs `u64::MAX`), so
/// the scan below always terminates quickly.
///
/// # Panics
///
/// Panics if `d` is negative or NaN (the paper requires `d ≥ 0`).
///
/// # Examples
///
/// ```
/// use sequential_dsu::alpha;
/// assert_eq!(alpha(10, 0.0), 4);           // A_4(0) = 13 > 10
/// assert_eq!(alpha(3, 0.0), 3);            // A_3(0) = 5 > 3
/// assert_eq!(alpha(1 << 20, 1.0), 5);      // A_4(1) = 65533 <= 2^20
/// assert_eq!(alpha(u64::MAX, 64.0), 3);    // A_3(64) = 2^67 - 3 > u64::MAX
/// ```
pub fn alpha(n: u64, d: f64) -> u32 {
    assert!(d >= 0.0, "α(n, d) requires d >= 0, got {d}");
    let floor_d = if d >= u64::MAX as f64 { u64::MAX } else { d as u64 };
    let mut i = 1;
    loop {
        match ackermann(i, floor_d) {
            None => return i, // beyond u64, certainly > n
            Some(v) if v > n => return i,
            _ => i += 1,
        }
    }
}

/// The rank assigned to an element by the Goel–Khanna–Larkin–Tarjan analysis.
///
/// Section 4: number the `n` elements `1..=n` consistent with the random
/// total order; the rank of element `x` is `⌊lg n⌋ − ⌊lg(n − x + 1)⌋`. The
/// largest element `n` gets rank `⌊lg n⌋`, elements `n−1, n−2` get one less,
/// and so on; about half of all elements have rank 0.
///
/// # Panics
///
/// Panics if `x` is not in `1..=n` or `n == 0`.
///
/// # Examples
///
/// ```
/// use sequential_dsu::gklt_rank;
/// assert_eq!(gklt_rank(8, 8), 3);
/// assert_eq!(gklt_rank(8, 7), 2);
/// assert_eq!(gklt_rank(8, 1), 0);
/// ```
pub fn gklt_rank(n: u64, x: u64) -> u32 {
    assert!(n > 0, "rank requires n > 0");
    assert!((1..=n).contains(&x), "rank requires 1 <= x <= n, got x={x}, n={n}");
    lg_floor(n) - lg_floor(n - x + 1)
}

/// `⌊lg v⌋` for `v > 0`.
fn lg_floor(v: u64) -> u32 {
    63 - v.leading_zeros()
}

/// Predicted per-operation work for **two-try splitting** (Theorem 5.1),
/// up to the constant factor the theorem hides:
/// `α(n, m/(np)) + log2(np/m + 1)`.
///
/// Used by the harness to print the predicted column next to measured work.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn two_try_work_bound(n: u64, m: u64, p: u64) -> f64 {
    assert!(n > 0 && m > 0 && p > 0, "work bound requires n, m, p > 0");
    let d = m as f64 / (n as f64 * p as f64);
    let log_term = ((n as f64 * p as f64) / m as f64 + 1.0).log2();
    alpha(n, d) as f64 + log_term
}

/// Predicted per-operation work for **one-try splitting** (Theorem 5.2):
/// `α(n, m/(np²)) + log2(np²/m + 1)`.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn one_try_work_bound(n: u64, m: u64, p: u64) -> f64 {
    assert!(n > 0 && m > 0 && p > 0, "work bound requires n, m, p > 0");
    let p2 = (p as f64) * (p as f64);
    let d = m as f64 / (n as f64 * p2);
    let log_term = ((n as f64 * p2) / m as f64 + 1.0).log2();
    alpha(n, d) as f64 + log_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_row_is_successor() {
        for j in 0..100 {
            assert_eq!(ackermann(0, j), Some(j + 1));
        }
    }

    #[test]
    fn closed_forms_match_recursion() {
        // Re-derive rows 1..=3 from the recursion directly to validate the
        // closed forms used in `ackermann`.
        fn slow(k: u32, j: u64) -> Option<u64> {
            match (k, j) {
                (0, j) => j.checked_add(1),
                (k, 0) => slow(k - 1, 1),
                (k, j) => slow(k - 1, slow(k, j - 1)?),
            }
        }
        for k in 1..=3 {
            for j in 0..8 {
                assert_eq!(ackermann(k, j), slow(k, j), "A_{k}({j})");
            }
        }
        // A_4(0) = A_3(1) = 13 is the last value the naive recursion can
        // reach without blowing the stack (A_4(1) = A_3(13) recurses ~2^16
        // deep through rows 2 and 1).
        assert_eq!(ackermann(4, 0), slow(4, 0));
    }

    #[test]
    fn known_values() {
        assert_eq!(ackermann(1, 0), Some(2));
        assert_eq!(ackermann(2, 0), Some(3));
        assert_eq!(ackermann(3, 0), Some(5));
        assert_eq!(ackermann(4, 0), Some(13));
        assert_eq!(ackermann(5, 0), Some(65533));
        assert_eq!(ackermann(3, 61), Some(u64::MAX - 2)); // 2^64 - 3
        assert_eq!(ackermann(3, 62), None);
        assert_eq!(ackermann(6, 0), None);
    }

    #[test]
    fn alpha_is_monotone_in_n_and_antitone_in_d() {
        let ds = [0.0, 0.5, 1.0, 2.0, 10.0, 100.0];
        let ns = [2u64, 10, 1 << 10, 1 << 20, 1 << 40, u64::MAX];
        for window in ns.windows(2) {
            for &d in &ds {
                assert!(alpha(window[0], d) <= alpha(window[1], d));
            }
        }
        for &n in &ns {
            for window in ds.windows(2) {
                assert!(alpha(n, window[0]) >= alpha(n, window[1]));
            }
        }
    }

    #[test]
    fn alpha_never_exceeds_six() {
        for &n in &[2u64, 1 << 16, 1 << 32, u64::MAX] {
            assert!(alpha(n, 0.0) <= 6, "alpha({n}, 0) = {}", alpha(n, 0.0));
        }
    }

    #[test]
    fn alpha_practical_inputs_are_tiny() {
        // For every practical problem size with d >= 1 the answer is <= 4.
        assert!(alpha(1 << 40, 1.0) <= 5);
        assert!(alpha(1 << 30, 16.0) <= 4);
    }

    #[test]
    fn alpha_definition_spot_checks() {
        // alpha(100, 64): A_1(64) = 66 <= 100, A_2(64) = 131 > 100 => 2.
        assert_eq!(alpha(100, 64.0), 2);
        // alpha(65, 64): A_1(64) = 66 > 65 => 1.
        assert_eq!(alpha(65, 64.0), 1);
    }

    #[test]
    #[should_panic(expected = "d >= 0")]
    fn alpha_rejects_negative_d() {
        alpha(10, -1.0);
    }

    #[test]
    fn ranks_partition_the_universe_geometrically() {
        // For n = 2^k - 1, rank r has 2^(k-1-r) elements: about half the
        // universe sits at rank 0, a quarter at rank 1, and so on. Check
        // n = 63 (k = 6).
        let n = 63u64;
        let mut counts = [0u64; 6];
        for x in 1..=n {
            counts[gklt_rank(n, x) as usize] += 1;
        }
        assert_eq!(&counts[..], &[32, 16, 8, 4, 2, 1]);
    }

    #[test]
    fn rank_is_monotone_in_id() {
        let n = 1000;
        let mut prev = 0;
        for x in 1..=n {
            let r = gklt_rank(n, x);
            assert!(r >= prev, "rank must be non-decreasing in id");
            prev = r;
        }
        assert_eq!(gklt_rank(n, n), lg_floor(n));
    }

    #[test]
    fn work_bounds_grow_with_p_when_ops_are_scarce() {
        // With np >> m the log term dominates and grows with p.
        let (n, m) = (1 << 20, 1 << 20);
        let w1 = two_try_work_bound(n, m, 1);
        let w16 = two_try_work_bound(n, m, 16);
        assert!(w16 > w1);
        // One-try bound is never smaller than two-try for the same inputs.
        for p in [1, 2, 4, 8, 16, 32] {
            assert!(one_try_work_bound(n, m, p) >= two_try_work_bound(n, m, p) - 1e-9);
        }
    }

    #[test]
    fn lg_floor_matches_ilog2() {
        for v in 1u64..=1025 {
            assert_eq!(lg_floor(v), v.ilog2());
        }
    }
}

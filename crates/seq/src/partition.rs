//! Canonical set partitions — the correctness oracle for every union-find
//! implementation in the workspace.
//!
//! Two union-find structures represent the same abstract state exactly when
//! their [`Partition`]s are equal, regardless of tree shape, linking rule, or
//! compaction history.

/// A partition of `0..n` into disjoint sets, stored canonically: each
/// element is labeled by the *smallest element of its set*, so equality of
/// partitions is plain `Vec` equality.
///
/// # Example
///
/// ```
/// use sequential_dsu::Partition;
///
/// // Labels may be arbitrary representatives; construction canonicalizes.
/// let p = Partition::from_labels(&[4, 4, 2, 2, 4]);
/// let q = Partition::from_labels(&[0, 0, 2, 2, 0]);
/// assert_eq!(p, q);
/// assert!(p.same_set(0, 4));
/// assert!(!p.same_set(1, 3));
/// assert_eq!(p.set_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    labels: Vec<usize>,
}

impl Partition {
    /// Builds a partition from arbitrary representative labels: `labels[i]`
    /// is any element identifying `i`'s set (e.g. the root returned by a
    /// `find`). Labels are normalized to the minimum element per set.
    ///
    /// # Panics
    ///
    /// Panics if some label is out of range, or if labels are inconsistent
    /// (an element's label must itself be labeled with the same set:
    /// `labels[labels[i]] == labels[i]`).
    pub fn from_labels(labels: &[usize]) -> Self {
        let n = labels.len();
        let mut min_of = vec![usize::MAX; n];
        for (i, &l) in labels.iter().enumerate() {
            assert!(l < n, "label {l} of element {i} out of range");
            assert_eq!(
                labels[l], l,
                "labels must be idempotent: labels[{l}] = {} != {l}",
                labels[l]
            );
            min_of[l] = min_of[l].min(i);
        }
        let canonical: Vec<usize> = labels.iter().map(|&l| min_of[l]).collect();
        Partition { labels: canonical }
    }

    /// The partition of `0..n` into singletons.
    pub fn singletons(n: usize) -> Self {
        Partition { labels: (0..n).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the partition is over the empty universe.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `true` iff `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.labels[x] == self.labels[y]
    }

    /// The canonical label (smallest member) of `x`'s set.
    pub fn label_of(&self, x: usize) -> usize {
        self.labels[x]
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.labels.iter().enumerate().filter(|&(i, &l)| i == l).count()
    }

    /// The sets themselves, each sorted ascending, ordered by smallest
    /// member.
    pub fn sets(&self) -> Vec<Vec<usize>> {
        let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &l) in self.labels.iter().enumerate() {
            by_label.entry(l).or_default().push(i);
        }
        by_label.into_values().collect()
    }

    /// Sizes of all sets, descending. Useful for component-size summaries.
    pub fn set_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.sets().iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// `true` iff `self` refines `other`: every set of `self` is contained
    /// in a set of `other`. A union-find state always refines any state
    /// reachable from it by more unites.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions have different lengths.
    pub fn refines(&self, other: &Partition) -> bool {
        assert_eq!(self.len(), other.len(), "partition sizes differ");
        // self refines other iff elements sharing a self-label share an
        // other-label; checking label representatives suffices.
        self.labels.iter().enumerate().all(|(i, &l)| other.labels[i] == other.labels[l])
    }

    /// The canonical labels slice (`labels[i]` = smallest member of `i`'s
    /// set).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sets = self.sets();
        write!(f, "{{")?;
        for (k, set) in sets.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, e) in set.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_picks_minimum() {
        let p = Partition::from_labels(&[3, 3, 3, 3]);
        assert_eq!(p.labels(), &[0, 0, 0, 0]);
        assert_eq!(p.label_of(2), 0);
    }

    #[test]
    fn singletons_partition() {
        let p = Partition::singletons(4);
        assert_eq!(p.set_count(), 4);
        assert_eq!(p.sets(), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(!p.same_set(0, 1));
    }

    #[test]
    fn sets_are_sorted_and_complete() {
        let p = Partition::from_labels(&[0, 1, 0, 1, 4]);
        assert_eq!(p.sets(), vec![vec![0, 2], vec![1, 3], vec![4]]);
        assert_eq!(p.set_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn refinement_is_reflexive_and_respects_merging() {
        let fine = Partition::from_labels(&[0, 0, 2, 3]);
        let coarse = Partition::from_labels(&[0, 0, 2, 2]);
        assert!(fine.refines(&fine));
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(Partition::singletons(4).refines(&coarse));
    }

    #[test]
    #[should_panic(expected = "idempotent")]
    fn inconsistent_labels_are_rejected() {
        // 1 claims label 2, but 2's own label is 0 — not a representative map.
        Partition::from_labels(&[0, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_labels_are_rejected() {
        Partition::from_labels(&[0, 5, 0]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::singletons(0);
        assert!(p.is_empty());
        assert_eq!(p.set_count(), 0);
        assert_eq!(p.to_string(), "{}");
    }

    #[test]
    fn display_is_readable() {
        let p = Partition::from_labels(&[0, 0, 2]);
        assert_eq!(p.to_string(), "{{0 1}, {2}}");
    }

    #[test]
    fn equality_ignores_history() {
        let a = Partition::from_labels(&[1, 1, 2]);
        let b = Partition::from_labels(&[0, 0, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |p: &Partition| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}

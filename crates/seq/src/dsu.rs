//! The classical compressed-forest union-find with pluggable linking and
//! compaction rules (paper Section 2).
//!
//! Each element stores a parent pointer; roots point to themselves. `Find`
//! walks the find path to the root, optionally compacting it; `Unite` links
//! one root under the other according to the linking rule. Any of the three
//! compaction methods combines with any of the three linking methods for a
//! bound of `O(m α(n, m/n))` over `m` operations (worst-case for size/rank,
//! expected for randomized linking).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// How `Unite` decides which root becomes the child (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linking {
    /// Link the root of the smaller tree (by node count) under the larger,
    /// breaking ties toward the second argument.
    BySize,
    /// Link the root of smaller rank under the larger; a tie links the first
    /// root under the second and increments the survivor's rank.
    ByRank,
    /// Randomized linking (Goel et al., SODA '14): a fixed uniformly random
    /// total order on elements; the smaller root in that order is linked
    /// under the larger. This is the rule the concurrent algorithm adopts.
    Randomized,
}

impl Linking {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Linking::BySize => "size",
            Linking::ByRank => "rank",
            Linking::Randomized => "random",
        }
    }
}

impl std::fmt::Display for Linking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How `Find` compacts the find path (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compaction {
    /// Plain walk to the root; the forest is never restructured by finds.
    None,
    /// Path halving: every other node on the find path gets its parent
    /// replaced by its grandparent, starting with the first node.
    Halving,
    /// Path splitting: every node on the find path gets its parent replaced
    /// by its grandparent. One pass; this is the rule the paper lifts to the
    /// concurrent setting (one-try / two-try splitting).
    Splitting,
    /// Path compression: every node on the find path gets its parent
    /// replaced by the root. Requires two passes over the path.
    Compression,
}

impl Compaction {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Compaction::None => "none",
            Compaction::Halving => "halving",
            Compaction::Splitting => "splitting",
            Compaction::Compression => "compression",
        }
    }
}

impl std::fmt::Display for Compaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Work counters for a [`SeqDsu`]; all counts are cumulative since creation.
///
/// `parent_reads` is the machine-level measure the paper's work bounds speak
/// about (each find-loop iteration reads at least one parent pointer);
/// `pointer_updates` counts compaction writes, the quantity Section 3's
/// halving-vs-splitting argument compares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Calls to `find` (including those inside `same_set` / `unite`).
    pub finds: u64,
    /// Parent-pointer reads performed while walking find paths.
    pub parent_reads: u64,
    /// Parent-pointer writes performed by compaction.
    pub pointer_updates: u64,
    /// Successful links (equivalently, `unite` calls that merged two sets).
    pub links: u64,
}

/// A sequential union-find over elements `0..n` with a chosen linking and
/// compaction rule.
///
/// The twelve `(Linking, Compaction)` combinations cover the nine algorithms
/// of paper Section 2 plus the three no-compaction variants analyzed in
/// Section 4.
///
/// # Example
///
/// ```
/// use sequential_dsu::{SeqDsu, Linking, Compaction};
///
/// let mut dsu = SeqDsu::new(4, Linking::BySize, Compaction::Compression);
/// assert!(dsu.unite(0, 1));
/// assert!(!dsu.unite(1, 0)); // already together
/// assert_eq!(dsu.set_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SeqDsu {
    parent: Vec<usize>,
    /// Size, rank, or random priority, depending on `linking`.
    aux: Vec<u64>,
    /// Parent in the *union forest* (links only, never rewritten by
    /// compaction); used to measure union-forest height (Corollary 4.2.1).
    union_parent: Vec<usize>,
    linking: Linking,
    compaction: Compaction,
    sets: usize,
    stats: SeqStats,
}

impl SeqDsu {
    /// Default RNG seed for [`Linking::Randomized`] priorities; fixed so that
    /// runs are reproducible unless a seed is given via [`SeqDsu::with_seed`].
    pub const DEFAULT_SEED: u64 = 0x4a61_7961_6e74_6969; // "Jayantii"

    /// Creates `n` singleton sets with the given rules.
    ///
    /// Randomized linking draws its priorities from a fixed seed; use
    /// [`SeqDsu::with_seed`] to control it.
    pub fn new(n: usize, linking: Linking, compaction: Compaction) -> Self {
        Self::with_seed(n, linking, compaction, Self::DEFAULT_SEED)
    }

    /// Creates `n` singleton sets, seeding the random total order used by
    /// [`Linking::Randomized`] (ignored by the deterministic rules).
    pub fn with_seed(n: usize, linking: Linking, compaction: Compaction, seed: u64) -> Self {
        let aux = match linking {
            Linking::BySize => vec![1; n],
            Linking::ByRank => vec![0; n],
            Linking::Randomized => {
                // A random permutation of 0..n: all priorities distinct, so
                // comparisons never tie.
                let mut ids: Vec<u64> = (0..n as u64).collect();
                ids.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
                ids
            }
        };
        SeqDsu {
            parent: (0..n).collect(),
            aux,
            union_parent: (0..n).collect(),
            linking,
            compaction,
            sets: n,
            stats: SeqStats::default(),
        }
    }

    /// Number of elements in the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently maintained.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// The linking rule this structure was built with.
    pub fn linking(&self) -> Linking {
        self.linking
    }

    /// The compaction rule this structure was built with.
    pub fn compaction(&self) -> Compaction {
        self.compaction
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }

    /// Resets the work counters to zero (the forest is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = SeqStats::default();
    }

    /// Returns the root of the tree containing `x`, compacting the find path
    /// according to the configured rule.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        self.stats.finds += 1;
        match self.compaction {
            Compaction::None => self.find_plain(x),
            Compaction::Halving => self.find_halving(x),
            Compaction::Splitting => self.find_splitting(x),
            Compaction::Compression => self.find_compression(x),
        }
    }

    fn find_plain(&mut self, mut u: usize) -> usize {
        loop {
            let v = self.parent[u];
            self.stats.parent_reads += 1;
            if v == u {
                return u;
            }
            u = v;
        }
    }

    fn find_halving(&mut self, mut u: usize) -> usize {
        // Replace the parent of every other node on the path by its
        // grandparent, starting with the first node.
        loop {
            let v = self.parent[u];
            self.stats.parent_reads += 1;
            if v == u {
                return u;
            }
            let w = self.parent[v];
            self.stats.parent_reads += 1;
            if w == v {
                return v;
            }
            self.parent[u] = w;
            self.stats.pointer_updates += 1;
            u = w;
        }
    }

    fn find_splitting(&mut self, mut u: usize) -> usize {
        // Replace the parent of every node on the path by its grandparent.
        loop {
            let v = self.parent[u];
            self.stats.parent_reads += 1;
            if v == u {
                return u;
            }
            let w = self.parent[v];
            self.stats.parent_reads += 1;
            if w == v {
                return v;
            }
            self.parent[u] = w;
            self.stats.pointer_updates += 1;
            u = v;
        }
    }

    fn find_compression(&mut self, x: usize) -> usize {
        // First pass: locate the root.
        let mut root = x;
        loop {
            let v = self.parent[root];
            self.stats.parent_reads += 1;
            if v == root {
                break;
            }
            root = v;
        }
        // Second pass: point everything on the path at the root.
        let mut u = x;
        while u != root {
            let next = self.parent[u];
            self.stats.parent_reads += 1;
            if next != root {
                self.parent[u] = root;
                self.stats.pointer_updates += 1;
            }
            u = next;
        }
        root
    }

    /// Returns `true` iff `x` and `y` are currently in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Unites the sets containing `x` and `y`.
    ///
    /// Returns `true` iff the two were in different sets (a link happened).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&mut self, x: usize, y: usize) -> bool {
        let u = self.find(x);
        let v = self.find(y);
        if u == v {
            return false;
        }
        self.link(u, v);
        true
    }

    /// Links root `u` and root `v` per the linking rule.
    fn link(&mut self, u: usize, v: usize) {
        debug_assert_eq!(self.parent[u], u);
        debug_assert_eq!(self.parent[v], v);
        debug_assert_ne!(u, v);
        let (child, new_parent) = match self.linking {
            Linking::BySize => {
                if self.aux[u] <= self.aux[v] {
                    (u, v)
                } else {
                    (v, u)
                }
            }
            Linking::ByRank => {
                if self.aux[u] < self.aux[v] {
                    (u, v)
                } else if self.aux[u] > self.aux[v] {
                    (v, u)
                } else {
                    // Tie: link u under v and raise v's rank.
                    self.aux[v] += 1;
                    (u, v)
                }
            }
            Linking::Randomized => {
                if self.aux[u] < self.aux[v] {
                    (u, v)
                } else {
                    (v, u)
                }
            }
        };
        if self.linking == Linking::BySize {
            self.aux[new_parent] += self.aux[child];
        }
        self.parent[child] = new_parent;
        self.union_parent[child] = new_parent;
        self.sets -= 1;
        self.stats.links += 1;
    }

    /// The height of the *union forest*: the forest built by links alone,
    /// ignoring compaction (paper Section 3). Corollary 4.2.1 proves this is
    /// `O(log n)` w.h.p. under randomized linking.
    ///
    /// Runs in `O(n)` with memoized depths.
    pub fn union_forest_height(&self) -> usize {
        union_forest_height(&self.union_parent)
    }

    /// The current parent pointer of `x` (diagnostics; `x` itself if root).
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn parent_of(&self, x: usize) -> usize {
        self.parent[x]
    }

    /// `SameSet` with **early termination** (paper Section 6, after Goel
    /// et al.): the two find walks are interleaved, always advancing the
    /// node that is smaller in the random total order, so only one path's
    /// worth of nodes is visited. Compaction is one splitting step per
    /// round regardless of the configured [`Compaction`] (splitting is the
    /// local rule early termination composes with).
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range, or if this structure does not
    /// use [`Linking::Randomized`] (the other rules maintain no total
    /// order compatible with parenthood).
    pub fn same_set_early(&mut self, x: usize, y: usize) -> bool {
        self.require_randomized();
        let mut u = x;
        let mut v = y;
        loop {
            if u == v {
                return true;
            }
            if self.aux[v] < self.aux[u] {
                std::mem::swap(&mut u, &mut v);
            }
            // u is the smaller; a root here cannot be in v's tree.
            self.stats.parent_reads += 1;
            if self.parent[u] == u {
                return false;
            }
            u = self.split_once(u);
        }
    }

    /// `Unite` with early termination (paper Section 6). Returns `true`
    /// iff a link happened.
    ///
    /// # Panics
    ///
    /// Same conditions as [`same_set_early`](SeqDsu::same_set_early).
    pub fn unite_early(&mut self, x: usize, y: usize) -> bool {
        self.require_randomized();
        let mut u = x;
        let mut v = y;
        loop {
            if u == v {
                return false;
            }
            if self.aux[v] < self.aux[u] {
                std::mem::swap(&mut u, &mut v);
            }
            self.stats.parent_reads += 1;
            if self.parent[u] == u {
                // Link the smaller root under the current larger node —
                // which need not be a root (ids only grow upward, so no
                // cycle can form).
                self.parent[u] = v;
                self.union_parent[u] = v;
                self.sets -= 1;
                self.stats.links += 1;
                return true;
            }
            u = self.split_once(u);
        }
    }

    fn require_randomized(&self) {
        assert!(
            self.linking == Linking::Randomized,
            "early termination requires randomized linking (got {})",
            self.linking
        );
    }

    /// One sequential splitting step at `u`: swing `u`'s parent to its
    /// grandparent and return the old parent.
    fn split_once(&mut self, u: usize) -> usize {
        let v = self.parent[u];
        let w = self.parent[v];
        self.stats.parent_reads += 2;
        if v != w {
            self.parent[u] = w;
            self.stats.pointer_updates += 1;
        }
        v
    }

    /// Depth of `x` in the **current compressed forest** (0 for a root).
    /// Unlike [`union_forest_depth`](SeqDsu::union_forest_depth), this sees
    /// the effects of compaction.
    pub fn depth_of(&self, x: usize) -> usize {
        let mut d = 0;
        let mut u = x;
        while self.parent[u] != u {
            u = self.parent[u];
            d += 1;
        }
        d
    }

    /// Depth of `x` in the union forest (0 for a union-forest root).
    pub fn union_forest_depth(&self, x: usize) -> usize {
        let mut d = 0;
        let mut u = x;
        while self.union_parent[u] != u {
            u = self.union_parent[u];
            d += 1;
        }
        d
    }

    /// The canonical partition currently represented (uses `find` on every
    /// element, so it compacts paths as a side effect).
    pub fn partition(&mut self) -> crate::Partition {
        let labels: Vec<usize> = (0..self.len()).map(|i| self.find(i)).collect();
        crate::Partition::from_labels(&labels)
    }
}

/// Computes the height (longest root-to-leaf arc count) of a parent-pointer
/// forest where roots are self-loops. Shared with the concurrent crate's
/// tests via copy; kept here as the canonical definition.
pub fn union_forest_height(parent: &[usize]) -> usize {
    let mut depth = vec![usize::MAX; parent.len()];
    let mut tallest = 0;
    for start in 0..parent.len() {
        // Walk up until a memoized node or a root, then unwind.
        let mut path = Vec::new();
        let mut u = start;
        while depth[u] == usize::MAX && parent[u] != u {
            path.push(u);
            u = parent[u];
        }
        let mut d = if parent[u] == u && depth[u] == usize::MAX {
            depth[u] = 0;
            0
        } else {
            depth[u]
        };
        for &node in path.iter().rev() {
            d += 1;
            depth[node] = d;
        }
        tallest = tallest.max(depth[start]);
    }
    tallest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_VARIANTS;

    #[test]
    fn singletons_are_disjoint() {
        for (linking, compaction) in ALL_VARIANTS {
            let mut dsu = SeqDsu::new(5, linking, compaction);
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(dsu.same_set(i, j), i == j, "{linking}/{compaction}");
                }
            }
            assert_eq!(dsu.set_count(), 5);
        }
    }

    #[test]
    fn unite_merges_and_is_idempotent() {
        for (linking, compaction) in ALL_VARIANTS {
            let mut dsu = SeqDsu::new(6, linking, compaction);
            assert!(dsu.unite(0, 1));
            assert!(dsu.unite(2, 3));
            assert!(dsu.unite(0, 3));
            assert!(!dsu.unite(1, 2), "{linking}/{compaction}: already merged");
            assert!(dsu.same_set(0, 2));
            assert!(!dsu.same_set(0, 4));
            assert_eq!(dsu.set_count(), 3);
            assert_eq!(dsu.stats().links, 3);
        }
    }

    #[test]
    fn chain_union_keeps_trees_shallow_with_size_linking() {
        let n = 1 << 12;
        let mut dsu = SeqDsu::new(n, Linking::BySize, Compaction::None);
        for i in 1..n {
            dsu.unite(0, i);
        }
        // Linking by size on a star-building sequence keeps height <= log n;
        // here every unite links a singleton under the big root: height 1.
        assert!(dsu.union_forest_height() <= 1 + (n as f64).log2() as usize);
        assert_eq!(dsu.set_count(), 1);
    }

    #[test]
    fn rank_tie_breaking_increments_rank() {
        let mut dsu = SeqDsu::new(4, Linking::ByRank, Compaction::None);
        dsu.unite(0, 1); // tie at rank 0: 0 -> 1, rank(1) = 1
        assert_eq!(dsu.find(0), 1);
        dsu.unite(2, 3); // tie: 2 -> 3, rank(3) = 1
        dsu.unite(1, 3); // tie at rank 1: 1 -> 3, rank(3) = 2
        assert_eq!(dsu.find(0), 3);
        assert_eq!(dsu.aux[3], 2);
    }

    #[test]
    fn size_linking_tracks_sizes() {
        let mut dsu = SeqDsu::new(8, Linking::BySize, Compaction::None);
        dsu.unite(0, 1);
        dsu.unite(2, 3);
        dsu.unite(0, 2);
        let root = dsu.find(0);
        assert_eq!(dsu.aux[root], 4);
    }

    #[test]
    fn randomized_linking_respects_priorities() {
        let mut dsu = SeqDsu::with_seed(16, Linking::Randomized, Compaction::None, 7);
        for i in 0..15 {
            dsu.unite(i, i + 1);
        }
        // Along every union-forest path, priorities strictly increase
        // (Lemma 3.1 analogue).
        for x in 0..16 {
            let p = dsu.union_parent[x];
            if p != x {
                assert!(dsu.aux[x] < dsu.aux[p], "child priority must be smaller");
            }
        }
    }

    #[test]
    fn compression_flattens_path() {
        let mut dsu = SeqDsu::new(8, Linking::Randomized, Compaction::Compression);
        for i in 0..7 {
            dsu.unite(i, i + 1);
        }
        let root = dsu.find(0);
        // After finding from 0, everything on that path points at the root.
        assert_eq!(dsu.parent[0], root);
    }

    #[test]
    fn splitting_halves_depth_roughly() {
        // Build a long path manually (bypassing linking) and check one
        // splitting find reduces every visited node's parent to grandparent.
        let n = 64;
        let mut dsu = SeqDsu::new(n, Linking::Randomized, Compaction::Splitting);
        for i in 0..n - 1 {
            dsu.parent[i] = i + 1;
            dsu.union_parent[i] = i + 1;
        }
        dsu.sets = 1;
        let root = dsu.find(0);
        assert_eq!(root, n - 1);
        // Node 0's parent must now be node 2 (its old grandparent).
        assert_eq!(dsu.parent[0], 2);
        assert_eq!(dsu.parent[1], 3);
    }

    #[test]
    fn halving_skips_every_other_node() {
        let n = 16;
        let mut dsu = SeqDsu::new(n, Linking::Randomized, Compaction::Halving);
        for i in 0..n - 1 {
            dsu.parent[i] = i + 1;
            dsu.union_parent[i] = i + 1;
        }
        dsu.sets = 1;
        let root = dsu.find(0);
        assert_eq!(root, n - 1);
        assert_eq!(dsu.parent[0], 2); // halved
        assert_eq!(dsu.parent[2], 4); // halved
        assert_eq!(dsu.parent[1], 2); // untouched (skipped node)
    }

    #[test]
    fn no_compaction_never_updates_pointers() {
        let mut dsu = SeqDsu::new(128, Linking::ByRank, Compaction::None);
        for i in 0..127 {
            dsu.unite(i, i + 1);
        }
        for i in 0..128 {
            dsu.find(i);
        }
        assert_eq!(dsu.stats().pointer_updates, 0);
    }

    #[test]
    fn compaction_reduces_reads_on_repeated_finds() {
        let build = |compaction| {
            let n = 4096;
            let mut dsu = SeqDsu::new(n, Linking::ByRank, compaction);
            // Binomial-style pairwise merging builds Θ(log n)-deep trees
            // under rank linking (a chain-unite order would give stars).
            let mut step = 1;
            while step < n {
                for i in (0..n).step_by(2 * step) {
                    if i + step < n {
                        dsu.unite(i, i + step);
                    }
                }
                step *= 2;
            }
            dsu.reset_stats();
            for _ in 0..4 {
                for i in 0..n {
                    dsu.find(i);
                }
            }
            dsu.stats().parent_reads
        };
        let none = build(Compaction::None);
        for c in [Compaction::Halving, Compaction::Splitting, Compaction::Compression] {
            assert!(build(c) <= none, "{c} should not read more than no compaction");
        }
    }

    #[test]
    fn union_forest_height_of_path_is_length() {
        let parent = vec![1, 2, 3, 3];
        assert_eq!(union_forest_height(&parent), 3);
        let singletons = vec![0, 1, 2];
        assert_eq!(union_forest_height(&singletons), 0);
    }

    #[test]
    fn union_forest_ignores_compaction() {
        let mut dsu = SeqDsu::new(64, Linking::Randomized, Compaction::Compression);
        for i in 0..63 {
            dsu.unite(i, i + 1);
        }
        let h_before = dsu.union_forest_height();
        for i in 0..64 {
            dsu.find(i); // compresses aggressively
        }
        assert_eq!(dsu.union_forest_height(), h_before);
    }

    #[test]
    fn partition_is_canonical() {
        let mut a = SeqDsu::new(6, Linking::BySize, Compaction::Compression);
        let mut b = SeqDsu::new(6, Linking::Randomized, Compaction::None);
        for dsu in [&mut a, &mut b] {
            dsu.unite(0, 3);
            dsu.unite(4, 5);
        }
        assert_eq!(a.partition(), b.partition());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_rejects_out_of_range() {
        let mut dsu = SeqDsu::new(3, Linking::BySize, Compaction::None);
        dsu.find(3);
    }

    #[test]
    fn empty_universe_is_fine() {
        let dsu = SeqDsu::new(0, Linking::BySize, Compaction::None);
        assert!(dsu.is_empty());
        assert_eq!(dsu.set_count(), 0);
        assert_eq!(dsu.union_forest_height(), 0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Linking::Randomized.to_string(), "random");
        assert_eq!(Compaction::Splitting.to_string(), "splitting");
    }

    #[test]
    fn early_termination_matches_standard_ops() {
        use crate::NaiveDsu;
        use rand::{Rng, SeedableRng};
        let n = 48;
        let mut dsu = SeqDsu::with_seed(n, Linking::Randomized, Compaction::Splitting, 9);
        let mut oracle = NaiveDsu::new(n);
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(17);
        for _ in 0..600 {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            match rng.gen_range(0..4) {
                0 => assert_eq!(dsu.unite(x, y), oracle.unite(x, y)),
                1 => assert_eq!(dsu.unite_early(x, y), oracle.unite(x, y)),
                2 => assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y)),
                _ => assert_eq!(dsu.same_set_early(x, y), oracle.same_set(x, y)),
            }
        }
        assert_eq!(dsu.partition(), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
    }

    #[test]
    fn early_termination_self_ops() {
        let mut dsu = SeqDsu::new(4, Linking::Randomized, Compaction::Splitting);
        assert!(dsu.same_set_early(2, 2));
        assert!(!dsu.unite_early(2, 2));
        assert_eq!(dsu.set_count(), 4);
    }

    #[test]
    fn early_termination_walks_one_path() {
        // A long path plus a far-away singleton: the early query should
        // only pay for one side.
        let n = 1 << 10;
        let mut dsu = SeqDsu::new(n, Linking::Randomized, Compaction::Splitting);
        for i in 0..n - 2 {
            dsu.unite(i, i + 1);
        }
        dsu.reset_stats();
        let singleton = n - 1;
        assert!(!dsu.same_set_early(0, singleton));
        // Walking only the smaller current node, the op is bounded by the
        // smaller tree's depth + O(1) — far below a double traversal.
        assert!(dsu.stats().parent_reads < 64, "reads = {}", dsu.stats().parent_reads);
    }

    #[test]
    #[should_panic(expected = "randomized linking")]
    fn early_termination_requires_random_order() {
        let mut dsu = SeqDsu::new(4, Linking::ByRank, Compaction::Halving);
        dsu.same_set_early(0, 1);
    }

    #[test]
    fn early_unites_maintain_id_order_invariant() {
        let mut dsu = SeqDsu::with_seed(64, Linking::Randomized, Compaction::Splitting, 4);
        for i in 0..63 {
            dsu.unite_early(i, i + 1);
        }
        for x in 0..64 {
            let p = dsu.parent_of(x);
            if p != x {
                assert!(dsu.aux[x] < dsu.aux[p]);
            }
        }
        assert_eq!(dsu.set_count(), 1);
    }
}

//! Lemma 3.2, checked mechanically: histories produced by the simulated
//! concurrent operations under round-robin, random, and adversarially
//! skewed schedules are always linearizable, for every find policy and
//! both operation styles.

use apram::{RoundRobin, Scheduler, SeededRandom, StarveAfter, Weighted};
use apram_dsu::{random_ids, run_concurrent, DsuProcess, Policy};
use linearize::{check_linearizable, DsuOp, DsuSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

const POLICIES: [Policy; 5] =
    [Policy::NoCompaction, Policy::OneTry, Policy::TwoTry, Policy::Halving, Policy::Compression];

fn random_ops(n: usize, count: usize, rng: &mut ChaCha12Rng) -> Vec<DsuOp> {
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                DsuOp::Unite(x, y)
            } else {
                DsuOp::SameSet(x, y)
            }
        })
        .collect()
}

fn check_run(
    n: usize,
    procs: usize,
    ops_per_proc: usize,
    policy: Policy,
    early: bool,
    scheduler: &mut dyn Scheduler,
    seed: u64,
) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let ids = random_ids(n, seed ^ 0x1D5);
    let processes: Vec<DsuProcess> = (0..procs)
        .map(|_| DsuProcess::new(random_ops(n, ops_per_proc, &mut rng), policy, early, ids.clone()))
        .collect();
    let outcome = run_concurrent(n, processes, scheduler, 1_000_000);
    let history = outcome.history();
    let verdict = check_linearizable(&DsuSpec::new(n), &history);
    assert!(
        verdict.is_ok(),
        "NOT LINEARIZABLE: policy {policy:?} early {early} seed {seed}\nhistory: {history:#?}"
    );
}

#[test]
fn round_robin_schedules_are_linearizable() {
    for policy in POLICIES {
        for early in [false, true] {
            for seed in 0..10 {
                check_run(5, 3, 4, policy, early, &mut RoundRobin::new(), seed);
            }
        }
    }
}

#[test]
fn random_schedules_are_linearizable() {
    for policy in POLICIES {
        for early in [false, true] {
            for seed in 0..25 {
                check_run(6, 3, 4, policy, early, &mut SeededRandom::new(seed * 31 + 7), seed);
            }
        }
    }
}

#[test]
fn skewed_adversarial_schedules_are_linearizable() {
    for policy in [Policy::TwoTry, Policy::OneTry] {
        for early in [false, true] {
            for seed in 0..15 {
                // One nearly-starved process, one dominant.
                let mut sched = Weighted::new(vec![100, 1, 10], seed);
                check_run(5, 3, 4, policy, early, &mut sched, 1000 + seed);
            }
        }
    }
}

#[test]
fn final_state_matches_confluent_oracle() {
    // Whatever the schedule, the final partition must equal the connected
    // components of all issued unite pairs.
    for seed in 0..10u64 {
        let n = 12;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let ids = random_ids(n, seed);
        let mut all_unites = Vec::new();
        let processes: Vec<DsuProcess> = (0..4)
            .map(|_| {
                let ops = random_ops(n, 8, &mut rng);
                for op in &ops {
                    if let DsuOp::Unite(x, y) = *op {
                        all_unites.push((x, y));
                    }
                }
                DsuProcess::new(ops, Policy::TwoTry, false, ids.clone())
            })
            .collect();
        let outcome = run_concurrent(n, processes, &mut SeededRandom::new(seed + 99), 1_000_000);
        let mut oracle = sequential_dsu::NaiveDsu::new(n);
        for (x, y) in all_unites {
            oracle.unite(x, y);
        }
        assert_eq!(
            sequential_dsu::Partition::from_labels(&outcome.labels()),
            oracle.partition(),
            "seed {seed}"
        );
    }
}

#[test]
fn per_op_step_counts_are_modest() {
    // Wait-freedom sanity in the model: with n = 16 no operation should
    // take hundreds of accesses regardless of schedule.
    for seed in 0..5u64 {
        let n = 16;
        let ids = random_ids(n, seed);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let processes: Vec<DsuProcess> = (0..4)
            .map(|_| {
                DsuProcess::new(random_ops(n, 10, &mut rng), Policy::TwoTry, false, ids.clone())
            })
            .collect();
        let outcome = run_concurrent(n, processes, &mut SeededRandom::new(seed), 1_000_000);
        for rec in outcome.records.iter().flatten() {
            assert!(rec.accesses < 300, "op {rec:?} took {} accesses", rec.accesses);
            assert!(rec.returned_at >= rec.invoked_at);
        }
    }
}

#[test]
fn wait_freedom_survives_a_starved_process() {
    // Lemma 3.3: on a fixed universe, every operation finishes in O(h + 1)
    // of its *own* steps, no matter what other processes do — including a
    // process that stops cold mid-operation. Starve process 0 after a few
    // steps (likely mid-find) and require the others to complete anyway.
    for policy in POLICIES {
        for seed in 0..5u64 {
            let n = 10;
            let ids = random_ids(n, seed);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let processes: Vec<DsuProcess> = (0..3)
                .map(|_| DsuProcess::new(random_ops(n, 6, &mut rng), policy, false, ids.clone()))
                .collect();
            let mut sched = StarveAfter::new(0, 7);
            // run_concurrent asserts completion; the starved process is
            // allowed to finish only after the survivors are done.
            let outcome = run_concurrent(n, processes, &mut sched, 1_000_000);
            assert!(outcome.report.completed, "{policy:?} seed {seed}");
            // Survivors must not have ballooned: their step counts stay
            // modest even though process 0 was frozen mid-operation.
            for proc_id in 1..3 {
                assert!(
                    outcome.report.steps_per_proc[proc_id] < 2_000,
                    "{policy:?} seed {seed}: survivor {proc_id} took {} steps",
                    outcome.report.steps_per_proc[proc_id]
                );
            }
            // And the whole history is still linearizable.
            assert!(
                check_linearizable(&DsuSpec::new(n), &outcome.history()).is_ok(),
                "{policy:?} seed {seed}"
            );
        }
    }
}

#[test]
fn trivial_self_ops_are_recorded() {
    let ids = random_ids(3, 0);
    let procs = vec![DsuProcess::new(
        vec![DsuOp::SameSet(1, 1), DsuOp::Unite(2, 2), DsuOp::SameSet(0, 1)],
        Policy::TwoTry,
        true, // early termination has zero-access self-ops
        ids,
    )];
    let outcome = run_concurrent(3, procs, &mut RoundRobin::new(), 10_000);
    let recs = &outcome.records[0];
    assert_eq!(recs.len(), 3);
    assert!(recs[0].result, "SameSet(1,1) is true");
    assert!(!recs[1].result, "Unite(2,2) links nothing");
    assert!(!recs[2].result, "singletons are disjoint");
    assert!(check_linearizable(&DsuSpec::new(3), &outcome.history()).is_ok());
}

//! Section 3's construction, executed literally: **two processes doing
//! halving in lockstep simulate one process doing splitting.**
//!
//! On a path `0 → 1 → ⋯ → k−1`, two halving finds started at nodes 0 and 1
//! and scheduled in strict alternation leave exactly the memory that one
//! splitting find from node 0 leaves: every node's parent two levels up.
//! This is the paper's argument that halving cannot beat splitting in the
//! concurrent setting (any splitting execution is matched, update for
//! update, by a halving execution with twice the operations and processes).

use apram::{Machine, Memory, Program, RoundRobin, Scripted};

use crate::find_sm::Policy;
use crate::process::FindProgram;

/// The outcome of the lockstep comparison for one path length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepComparison {
    /// Path length `k`.
    pub k: usize,
    /// Final parent array after the halving pair.
    pub halving_pair: Vec<usize>,
    /// Final parent array after the single splitting find.
    pub splitting_single: Vec<usize>,
    /// Pointer updates (successful CASes) by the halving pair.
    pub halving_updates: u64,
    /// Pointer updates by the splitting find.
    pub splitting_updates: u64,
    /// Total steps of the halving pair.
    pub halving_steps: u64,
    /// Total steps of the splitting find.
    pub splitting_steps: u64,
}

impl LockstepComparison {
    /// `true` when the two executions left identical memories — the
    /// Section 3 claim.
    pub fn memories_match(&self) -> bool {
        self.halving_pair == self.splitting_single
    }
}

/// A path memory `0 → 1 → ⋯ → k−1` (cell `i` holds `i+1`; the last holds
/// itself).
pub fn path_memory(k: usize) -> Memory {
    assert!(k >= 1, "path needs at least one node");
    let mut cells: Vec<usize> = (1..k).collect();
    cells.push(k - 1);
    Memory::new(cells)
}

/// Runs the two executions of the Section 3 construction on a `k`-node
/// path and reports both final memories.
///
/// # Panics
///
/// Panics if `k < 3` (the construction needs room for a grandparent).
pub fn lockstep_halving_vs_splitting(k: usize) -> LockstepComparison {
    assert!(k >= 3, "need k >= 3");
    // (a) Two halving finds from nodes 0 and 1, strictly alternating.
    // RoundRobin alternates while both run and lets the survivor finish.
    let mut machine_a = Machine::new(path_memory(k));
    let (halving_updates, halving_steps) = {
        let mut p0 = FindProgram::new(Policy::Halving, 0);
        let mut p1 = FindProgram::new(Policy::Halving, 1);
        let mut refs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
        let report = machine_a.run(&mut refs, &mut RoundRobin::new(), 100_000);
        assert!(report.completed);
        let (_, _, cas_ok, _) = machine_a.memory().access_breakdown();
        (cas_ok, report.total_steps)
    };
    // (b) One splitting find from node 0.
    let mut machine_b = Machine::new(path_memory(k));
    let (splitting_updates, splitting_steps) = {
        let mut p = FindProgram::new(Policy::OneTry, 0);
        let mut refs: Vec<&mut dyn Program> = vec![&mut p];
        // A scripted all-zeros schedule, to be explicit that one process runs.
        let report = machine_b.run(&mut refs, &mut Scripted::new(vec![]), 100_000);
        assert!(report.completed);
        let (_, _, cas_ok, _) = machine_b.memory().access_breakdown();
        (cas_ok, report.total_steps)
    };
    LockstepComparison {
        k,
        halving_pair: machine_a.memory().snapshot(),
        splitting_single: machine_b.memory().snapshot(),
        halving_updates,
        splitting_updates,
        halving_steps,
        splitting_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_section_3_claim_holds_for_many_k() {
        for k in [3usize, 4, 5, 8, 9, 16, 33, 64, 127, 256, 1000] {
            let cmp = lockstep_halving_vs_splitting(k);
            assert!(
                cmp.memories_match(),
                "k = {k}: halving pair {:?} != splitting {:?}",
                &cmp.halving_pair[..k.min(12)],
                &cmp.splitting_single[..k.min(12)]
            );
        }
    }

    #[test]
    fn splitting_makes_every_parent_the_grandparent() {
        let cmp = lockstep_halving_vs_splitting(10);
        // p[i] = min(i + 2, 9).
        let expected: Vec<usize> = (0..10).map(|i| (i + 2).min(9)).collect();
        assert_eq!(cmp.splitting_single, expected);
    }

    #[test]
    fn update_counts_match_the_simulation_argument() {
        // The halving pair performs as many pointer updates as the single
        // splitting pass (that is the "does as many pointer updates" part
        // of the Section 3 argument).
        for k in [8usize, 64, 256] {
            let cmp = lockstep_halving_vs_splitting(k);
            assert_eq!(cmp.halving_updates, cmp.splitting_updates, "k = {k}: updates differ");
        }
    }

    #[test]
    fn path_memory_shape() {
        let m = path_memory(4);
        assert_eq!(m.snapshot(), vec![1, 2, 3, 3]);
        let single = path_memory(1);
        assert_eq!(single.snapshot(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn tiny_paths_rejected() {
        lockstep_halving_vs_splitting(2);
    }
}

//! The paper's algorithms, hand-compiled to APRAM **step machines**.
//!
//! The native `concurrent-dsu` crate runs on real threads, where the OS
//! schedules instructions and no experiment can dictate an interleaving.
//! This crate re-expresses the very same pseudocode — `Find` without
//! compaction, with one-try and two-try splitting, halving, `SameSet`,
//! `Unite`, and their early-termination variants — as explicit state
//! machines over the [`apram`] simulator, where every shared-memory access
//! is one schedulable step. That unlocks the paper's schedule-sensitive
//! constructions:
//!
//! * **Section 3's lockstep simulation** — two processes doing halving in
//!   lockstep behave exactly like one process doing splitting
//!   ([`lockstep_halving_vs_splitting`]);
//! * **Theorem 5.4's lower bound** — lockstep `SameSet` storms against
//!   binomial trees (driven by the harness, experiment E5);
//! * **Lemma 3.2's linearizability** — arbitrary adversarial schedules
//!   produce timed histories ([`OpRecord`]) fed straight into the
//!   [`linearize`] checker (experiment E8).
//!
//! # Example
//!
//! ```
//! use apram_dsu::{DsuProcess, Policy, random_ids, run_concurrent};
//! use apram::SeededRandom;
//! use linearize::{check_linearizable, DsuOp, DsuSpec};
//!
//! let ids = random_ids(4, 42);
//! let procs = vec![
//!     DsuProcess::new(vec![DsuOp::Unite(0, 1), DsuOp::SameSet(0, 2)], Policy::TwoTry, false, ids.clone()),
//!     DsuProcess::new(vec![DsuOp::Unite(1, 2)], Policy::TwoTry, false, ids.clone()),
//! ];
//! let outcome = run_concurrent(4, procs, &mut SeededRandom::new(7), 100_000);
//! assert!(outcome.report.completed);
//! let history = outcome.history();
//! assert!(check_linearizable(&DsuSpec::new(4), &history).is_ok());
//! ```

pub mod chaos;
pub mod explore;
pub mod find_sm;
pub mod lockstep;
pub mod process;

pub use chaos::{chaos_scheduler, stall_weights};
pub use explore::{explore_all_schedules, ExploreReport};
pub use find_sm::{AdvanceSm, FindSm, Policy};
pub use lockstep::{lockstep_halving_vs_splitting, LockstepComparison};
pub use process::{
    random_ids, run_concurrent, ConcurrentOutcome, DsuProcess, FindProgram, OpRecord,
};

//! Exhaustive schedule exploration: *every* interleaving of a tiny
//! concurrent execution, checked.
//!
//! Random and adversarial schedules (experiment E8) sample the schedule
//! space; for very small configurations we can do better and enumerate it
//! completely — the model-checking flavor of assurance the paper's own
//! motivating application (SCC decomposition for model checking) calls
//! for. The explorer performs a DFS over scheduler choices, cloning the
//! machine state at each branch point, and hands every completed
//! execution's history to a verdict function (the tests pass the
//! Wing–Gong checker).
//!
//! State count grows as `(procs)^(total steps)`, so keep configurations
//! tiny: 2 processes × 1–2 operations each explores in milliseconds; the
//! [`ExploreReport`] says how many schedules were visited and whether the
//! cap was hit.

use apram::{Ctx, Memory, Program, StepOutcome};

use crate::process::{DsuProcess, OpRecord};

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Completed executions visited.
    pub executions: u64,
    /// Executions whose verdict function returned `false`.
    pub failures: u64,
    /// `true` if the exploration stopped early at the execution cap.
    pub truncated: bool,
}

/// Exhaustively explores every schedule of `processes` over a fresh
/// singleton forest of `n` elements, calling `verdict` with each completed
/// execution's per-process records and final memory. Exploration stops
/// after `max_executions` complete executions (reported as `truncated`).
///
/// # Panics
///
/// Panics if any single execution exceeds 100 000 steps (no DSU program
/// this size can).
pub fn explore_all_schedules(
    n: usize,
    processes: &[DsuProcess],
    max_executions: u64,
    mut verdict: impl FnMut(&[Vec<OpRecord>], &Memory) -> bool,
) -> ExploreReport {
    let mut report = ExploreReport { executions: 0, failures: 0, truncated: false };
    let state = State {
        memory: Memory::identity(n),
        procs: processes.to_vec(),
        done: vec![false; processes.len()],
        step: 0,
    };
    dfs(state, &mut report, max_executions, &mut verdict);
    report
}

#[derive(Clone)]
struct State {
    memory: Memory,
    procs: Vec<DsuProcess>,
    done: Vec<bool>,
    step: u64,
}

fn dfs(
    state: State,
    report: &mut ExploreReport,
    max_executions: u64,
    verdict: &mut impl FnMut(&[Vec<OpRecord>], &Memory) -> bool,
) {
    if report.executions >= max_executions {
        report.truncated = true;
        return;
    }
    let runnable: Vec<usize> = (0..state.procs.len()).filter(|&i| !state.done[i]).collect();
    if runnable.is_empty() {
        report.executions += 1;
        let records: Vec<Vec<OpRecord>> = state.procs.iter().map(|p| p.records.clone()).collect();
        if !verdict(&records, &state.memory) {
            report.failures += 1;
        }
        return;
    }
    assert!(state.step < 100_000, "execution ran away");
    for &pick in &runnable {
        let mut next = state.clone();
        let outcome = {
            let mut ctx = Ctx { mem: &mut next.memory, proc_id: pick, step: next.step };
            next.procs[pick].step(&mut ctx)
        };
        next.step += 1;
        if let StepOutcome::Done(_) = outcome {
            next.done[pick] = true;
        }
        dfs(next, report, max_executions, verdict);
        if report.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_sm::Policy;
    use crate::process::random_ids;
    use linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec};

    fn history_of(records: &[Vec<OpRecord>]) -> Vec<CompletedOp<DsuOp>> {
        records
            .iter()
            .flatten()
            .map(|r| CompletedOp {
                op: r.op,
                result: r.result,
                invoked_at: r.invoked_at,
                returned_at: r.returned_at,
            })
            .collect()
    }

    /// The fundamental race: two processes unite overlapping pairs. Every
    /// interleaving must linearize, and exactly the right number of links
    /// must happen in every schedule.
    #[test]
    fn all_interleavings_of_racing_unites_linearize() {
        let n = 3;
        for policy in [Policy::NoCompaction, Policy::OneTry, Policy::TwoTry] {
            let ids = random_ids(n, 7);
            let procs = vec![
                DsuProcess::new(vec![DsuOp::Unite(0, 1)], policy, false, ids.clone()),
                DsuProcess::new(vec![DsuOp::Unite(1, 2)], policy, false, ids.clone()),
            ];
            let spec = DsuSpec::new(n);
            let report = explore_all_schedules(n, &procs, 3_000_000, |records, memory| {
                // (a) linearizable; (b) both links succeeded (disjoint
                // pairs can both link in every schedule); (c) final memory
                // is one tree containing 0, 1, 2.
                let ok_lin = check_linearizable(&spec, &history_of(records)).is_ok();
                let both_linked = records[0][0].result && records[1][0].result;
                let snapshot = memory.snapshot();
                let root_of = |mut x: usize| {
                    while snapshot[x] != x {
                        x = snapshot[x];
                    }
                    x
                };
                let one_set = root_of(0) == root_of(1) && root_of(1) == root_of(2);
                ok_lin && both_linked && one_set
            });
            assert!(!report.truncated, "{policy:?} exploration truncated");
            assert!(report.executions > 10, "{policy:?} explored too little");
            assert_eq!(report.failures, 0, "{policy:?} had failing schedules");
        }
    }

    /// Two processes unite the *same* pair: in every schedule exactly one
    /// may win the link (or one sees them already united and returns
    /// false).
    #[test]
    fn same_pair_unite_race_has_exactly_one_winner() {
        let n = 2;
        let ids = random_ids(n, 3);
        let procs = vec![
            DsuProcess::new(vec![DsuOp::Unite(0, 1)], Policy::TwoTry, false, ids.clone()),
            DsuProcess::new(vec![DsuOp::Unite(0, 1)], Policy::TwoTry, false, ids.clone()),
        ];
        let report = explore_all_schedules(n, &procs, 3_000_000, |records, _| {
            let wins = records[0][0].result as u32 + records[1][0].result as u32;
            wins == 1
        });
        assert!(!report.truncated);
        assert_eq!(report.failures, 0, "some schedule produced 0 or 2 winners");
    }

    /// A query racing a unite must answer either way, but never violate
    /// linearizability — across every interleaving.
    #[test]
    fn query_racing_unite_is_linearizable_in_every_schedule() {
        let n = 2;
        let ids = random_ids(n, 11);
        let spec = DsuSpec::new(n);
        for early in [false, true] {
            let procs = vec![
                DsuProcess::new(vec![DsuOp::Unite(0, 1)], Policy::TwoTry, early, ids.clone()),
                DsuProcess::new(vec![DsuOp::SameSet(0, 1)], Policy::TwoTry, early, ids.clone()),
            ];
            let mut saw_true = false;
            let mut saw_false = false;
            let report = explore_all_schedules(n, &procs, 3_000_000, |records, _| {
                if records[1][0].result {
                    saw_true = true;
                } else {
                    saw_false = true;
                }
                check_linearizable(&spec, &history_of(records)).is_ok()
            });
            assert!(!report.truncated);
            assert_eq!(report.failures, 0, "early={early}");
            assert!(saw_true && saw_false, "both outcomes must be reachable (early={early})");
        }
    }

    /// Compression's two-pass fix-ups racing each other stay linearizable
    /// and converge to a sane forest in every schedule.
    #[test]
    fn compression_races_explore_cleanly() {
        let n = 3;
        let ids = random_ids(n, 5);
        let spec = DsuSpec::new(n);
        let procs = vec![
            DsuProcess::new(
                vec![DsuOp::Unite(0, 1), DsuOp::SameSet(0, 2)],
                Policy::Compression,
                false,
                ids.clone(),
            ),
            DsuProcess::new(vec![DsuOp::Unite(1, 2)], Policy::Compression, false, ids.clone()),
        ];
        let report = explore_all_schedules(n, &procs, 5_000_000, |records, memory| {
            let ok = check_linearizable(&spec, &history_of(records)).is_ok();
            // Forest sanity: parent chains terminate.
            let snapshot = memory.snapshot();
            let mut sane = true;
            for start in 0..n {
                let mut x = start;
                let mut hops = 0;
                while snapshot[x] != x {
                    x = snapshot[x];
                    hops += 1;
                    if hops > n {
                        sane = false;
                        break;
                    }
                }
            }
            ok && sane
        });
        assert!(report.executions > 100);
        assert_eq!(report.failures, 0);
    }
}

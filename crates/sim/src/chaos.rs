//! The chaos vocabulary, translated to APRAM schedules.
//!
//! The native side injects faults *inside* the store (`concurrent_dsu::
//! fault::FaultPlan`: spurious CAS failures, delayed loads, per-thread
//! stall windows). On the simulator none of that is necessary — the
//! scheduler *is* the adversary, and every native fault has a schedule
//! that produces it: a spurious CAS failure is a racing process winning
//! the cell, a delayed load is a preemption between load and CAS, a stall
//! window is a process the scheduler starves. This module maps the same
//! `(seed, rate)` knobs the native chaos harness sweeps (`chaos_ab`,
//! `e13_fault_injection`, `DSU_FAULT_SEED` / `DSU_FAULT_RATE`) onto
//! [`apram::Weighted`] schedules, so one experiment row means the same
//! adversary intensity on both sides.
//!
//! The decision function is the same splitmix64 chain the native
//! `FaultPlan` uses, so `(seed, rate)` names one reproducible adversary
//! across both crates without either depending on the other.

use apram::Weighted;

/// splitmix64 — identical to `concurrent_dsu::order::splitmix64`. Kept
/// local because this crate deliberately does not depend on the native
/// implementation (the simulator must not inherit its bugs).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps the upper 53 bits of a hash to `[0, 1)` — same construction as the
/// native fault layer's decision draw.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How much slower a stalled process runs than a healthy one. A stalled
/// process still makes progress (the algorithm is wait-free; starving a
/// process outright would only test the scheduler), it just loses ~every
/// race — the schedule analogue of the native stall window.
pub const STALL_FACTOR: u64 = 256;

/// Per-process weights for [`apram::Weighted`]: each process is stalled
/// (weight 1) with probability `rate`, healthy (weight [`STALL_FACTOR`])
/// otherwise. Deterministic in `(procs, rate, seed)`; the same seed the
/// native `FaultPlan` takes names the same adversary here.
///
/// `rate` is clamped to `[0, 1]`; at least one process is always left
/// healthy so the schedule stays usefully asymmetric (and `Weighted::new`
/// always gets a positive weight).
pub fn stall_weights(procs: usize, rate: f64, seed: u64) -> Vec<u64> {
    let rate = rate.clamp(0.0, 1.0);
    let mut weights: Vec<u64> = (0..procs)
        .map(|p| {
            let h = splitmix64(seed ^ splitmix64(p as u64 ^ 0x5EED));
            if unit(h) < rate {
                1
            } else {
                STALL_FACTOR
            }
        })
        .collect();
    if let Some(first_healthy) = weights.iter_mut().max() {
        *first_healthy = STALL_FACTOR;
    }
    weights
}

/// A chaos schedule over `procs` processes: weighted-random with stalls
/// drawn at `rate`. The direct sim-side counterpart of wrapping a store
/// in `FaultyStore` with `FaultPlan::rate(seed, rate)`.
pub fn chaos_scheduler(procs: usize, rate: f64, seed: u64) -> Weighted {
    Weighted::new(stall_weights(procs, rate, seed), splitmix64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_ids, run_concurrent, DsuProcess, Policy};
    use linearize::{check_linearizable, DsuOp, DsuSpec};

    #[test]
    fn weights_are_deterministic_and_bounded() {
        let a = stall_weights(8, 0.5, 42);
        let b = stall_weights(8, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| w == 1 || w == STALL_FACTOR));
        assert!(a.contains(&STALL_FACTOR), "at least one healthy process");
    }

    #[test]
    fn zero_rate_stalls_nobody() {
        assert!(stall_weights(16, 0.0, 9).iter().all(|&w| w == STALL_FACTOR));
    }

    #[test]
    fn full_rate_keeps_one_healthy() {
        let w = stall_weights(16, 1.0, 9);
        assert_eq!(w.iter().filter(|&&x| x == STALL_FACTOR).count(), 1);
        assert_eq!(w.iter().filter(|&&x| x == 1).count(), 15);
    }

    /// The sim-side chaos run stays linearizable — the schedule analogue
    /// of `e13_fault_injection`'s native sweep.
    #[test]
    fn chaos_schedules_preserve_linearizability() {
        let n = 6;
        for seed in 0..20u64 {
            let ids = random_ids(n, seed);
            let procs: Vec<DsuProcess> = (0..4)
                .map(|p| {
                    let ops = (0..4)
                        .map(|i| {
                            let z = splitmix64(seed ^ ((p as u64) << 32) ^ i as u64);
                            let (x, y) = ((z >> 8) as usize % n, (z >> 24) as usize % n);
                            if z.is_multiple_of(4) {
                                DsuOp::SameSet(x, y)
                            } else {
                                DsuOp::Unite(x, y)
                            }
                        })
                        .collect();
                    DsuProcess::new(ops, Policy::TwoTry, false, ids.clone())
                })
                .collect();
            let mut sched = chaos_scheduler(4, 0.5, seed);
            let outcome = run_concurrent(n, procs, &mut sched, 1_000_000);
            let history = outcome.history();
            assert!(
                check_linearizable(&DsuSpec::new(n), &history).is_ok(),
                "chaos schedule (seed {seed}) produced a non-linearizable history:\n{history:#?}"
            );
        }
    }
}

//! Whole operations (`SameSet` / `Unite`, standard and early-termination)
//! as APRAM programs, with timed operation records for linearizability
//! checking.

use std::sync::Arc;

use apram::{Ctx, Machine, Memory, Program, RunReport, Scheduler, StepOutcome};
use linearize::{CompletedOp, DsuOp};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::find_sm::{AdvanceSm, FindSm, Policy};

/// A completed operation with simulator-step timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation.
    pub op: DsuOp,
    /// Its return value.
    pub result: bool,
    /// Global step at which the operation began executing.
    pub invoked_at: u64,
    /// Global step at which it returned.
    pub returned_at: u64,
    /// Shared accesses this operation performed (its *work*).
    pub accesses: u64,
}

/// Draws the random total order: a uniform permutation of `0..n` as ids.
pub fn random_ids(n: usize, seed: u64) -> Arc<Vec<u64>> {
    let mut ids: Vec<u64> = (0..n as u64).collect();
    ids.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
    Arc::new(ids)
}

/// Where a running operation is.
#[derive(Debug, Clone)]
enum OpSm {
    /// Standard ops: running the find for `u` (0) or `v` (1).
    Find { which: u8, sm: FindSm },
    /// Standard ops: re-checking whether `u` is still a root
    /// (`SameSet` line 8) or CASing the link (`Unite` lines 9/10).
    RootPhase,
    /// Early-termination ops: advancing the smaller node.
    Advance(AdvanceSm),
    /// Early-termination ops: about to read `u.parent` (SameSet root
    /// check) or CAS the link (Unite).
    EarlyRoot,
}

/// One APRAM process executing a list of DSU operations sequentially.
///
/// Implements [`Program`]; feed a batch of these to [`run_concurrent`] (or
/// an [`apram::Machine`] directly) and collect the timed [`OpRecord`]s for
/// the linearizability checker.
#[derive(Debug, Clone)]
pub struct DsuProcess {
    ops: Vec<DsuOp>,
    policy: Policy,
    early: bool,
    ids: Arc<Vec<u64>>,
    /// Completed-operation records (public output).
    pub records: Vec<OpRecord>,
    // --- execution state ---
    next_op: usize,
    sm: Option<OpSm>,
    u: usize,
    v: usize,
    invoked_at: u64,
    accesses_at_invoke: u64,
}

impl DsuProcess {
    /// A process that will run `ops` in order with the given find `policy`;
    /// `early` selects the Section 6 early-termination implementations.
    /// `ids` is the shared random total order (see [`random_ids`]).
    pub fn new(ops: Vec<DsuOp>, policy: Policy, early: bool, ids: Arc<Vec<u64>>) -> Self {
        DsuProcess {
            ops,
            policy,
            early,
            ids,
            records: Vec::new(),
            next_op: 0,
            sm: None,
            u: 0,
            v: 0,
            invoked_at: 0,
            accesses_at_invoke: 0,
        }
    }

    fn less(&self, a: usize, b: usize) -> bool {
        self.ids[a] < self.ids[b]
    }

    fn finish_op(&mut self, result: bool, ctx: &Ctx<'_>) {
        let op = self.ops[self.next_op];
        self.records.push(OpRecord {
            op,
            result,
            invoked_at: self.invoked_at,
            returned_at: ctx.step,
            accesses: ctx.mem.accesses() - self.accesses_at_invoke,
        });
        self.next_op += 1;
        self.sm = None;
    }

    /// Begin the next op; returns `Some(result)` if it finishes with zero
    /// accesses (trivial early-termination cases).
    fn begin_op(&mut self, ctx: &Ctx<'_>) -> Option<bool> {
        let op = self.ops[self.next_op];
        self.invoked_at = ctx.step;
        self.accesses_at_invoke = ctx.mem.accesses();
        let (x, y) = match op {
            DsuOp::Unite(x, y) | DsuOp::SameSet(x, y) => (x, y),
        };
        self.u = x;
        self.v = y;
        if self.early {
            // Algorithms 6/7 check u == v before any access.
            if self.u == self.v {
                return Some(!matches!(op, DsuOp::Unite(..))); // SameSet→true, Unite→false
            }
            if self.less(self.v, self.u) {
                std::mem::swap(&mut self.u, &mut self.v);
            }
            self.sm = Some(OpSm::EarlyRoot);
        } else {
            self.sm = Some(OpSm::Find { which: 0, sm: FindSm::new(self.policy, self.u) });
        }
        None
    }

    /// Advance the in-flight operation by one access. `Some(result)` when
    /// the operation returns on this step.
    fn step_op(&mut self, ctx: &mut Ctx<'_>) -> Option<bool> {
        let op = self.ops[self.next_op];
        let is_unite = matches!(op, DsuOp::Unite(..));
        let sm = self.sm.as_mut().expect("operation in flight");
        match sm {
            OpSm::Find { which, sm: find } => {
                if let Some(root) = find.step(ctx.mem) {
                    if *which == 0 {
                        self.u = root;
                        self.sm =
                            Some(OpSm::Find { which: 1, sm: FindSm::new(self.policy, self.v) });
                    } else {
                        self.v = root;
                        if self.u == self.v {
                            // SameSet -> true; Unite -> already same set.
                            return Some(!is_unite);
                        }
                        self.sm = Some(OpSm::RootPhase);
                    }
                }
                None
            }
            OpSm::RootPhase => {
                if is_unite {
                    // Try to link the smaller root under the larger.
                    let (child, parent) =
                        if self.less(self.u, self.v) { (self.u, self.v) } else { (self.v, self.u) };
                    if ctx.mem.cas(child, child, parent) {
                        return Some(true);
                    }
                    // Failed: re-find both.
                    self.sm = Some(OpSm::Find { which: 0, sm: FindSm::new(self.policy, self.u) });
                    None
                } else {
                    // SameSet: if u is still a root, the sets differ.
                    let p = ctx.mem.read(self.u);
                    if p == self.u {
                        return Some(false);
                    }
                    self.sm = Some(OpSm::Find { which: 0, sm: FindSm::new(self.policy, self.u) });
                    None
                }
            }
            OpSm::EarlyRoot => {
                if is_unite {
                    // Algorithm 7: CAS(u.parent, u, v) links if u is a root.
                    if ctx.mem.cas(self.u, self.u, self.v) {
                        return Some(true);
                    }
                    self.sm = Some(OpSm::Advance(AdvanceSm::new(self.policy, self.u)));
                    None
                } else {
                    // Algorithm 6: if u (the smaller) is a root, different
                    // sets.
                    let p = ctx.mem.read(self.u);
                    if p == self.u {
                        return Some(false);
                    }
                    self.sm = Some(OpSm::Advance(AdvanceSm::new(self.policy, self.u)));
                    None
                }
            }
            OpSm::Advance(adv) => {
                if let Some(next_u) = adv.step(ctx.mem) {
                    self.u = next_u;
                    // Loop top of Algorithms 6/7 (local decisions).
                    if self.u == self.v {
                        return Some(!is_unite);
                    }
                    if self.less(self.v, self.u) {
                        std::mem::swap(&mut self.u, &mut self.v);
                    }
                    self.sm = Some(OpSm::EarlyRoot);
                }
                None
            }
        }
    }
}

impl Program for DsuProcess {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
        if self.next_op >= self.ops.len() {
            return StepOutcome::Done(self.records.len());
        }
        if self.sm.is_none() {
            if let Some(trivial) = self.begin_op(ctx) {
                // Zero-access operation (e.g. early-termination SameSet(x, x)):
                // record it and spend this step on it, keeping one step per
                // operation so history timestamps preserve program order.
                self.finish_op(trivial, ctx);
                if self.next_op >= self.ops.len() {
                    return StepOutcome::Done(self.records.len());
                }
                return StepOutcome::Running;
            }
        }
        if let Some(result) = self.step_op(ctx) {
            self.finish_op(result, ctx);
            if self.next_op >= self.ops.len() {
                return StepOutcome::Done(self.records.len());
            }
        }
        StepOutcome::Running
    }
}

/// A bare `Find(x)` as a program (used by the Section 3 lockstep
/// construction).
#[derive(Debug, Clone)]
pub struct FindProgram {
    sm: FindSm,
}

impl FindProgram {
    /// A find from `x` under `policy`.
    pub fn new(policy: Policy, x: usize) -> Self {
        FindProgram { sm: FindSm::new(policy, x) }
    }
}

impl Program for FindProgram {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
        match self.sm.step(ctx.mem) {
            Some(root) => StepOutcome::Done(root),
            None => StepOutcome::Running,
        }
    }
}

/// Everything a concurrent simulator run produces.
#[derive(Debug)]
pub struct ConcurrentOutcome {
    /// The machine report (steps, completion, accesses).
    pub report: RunReport,
    /// Per-process operation records.
    pub records: Vec<Vec<OpRecord>>,
    /// Final memory (the parent array).
    pub memory: Memory,
}

impl ConcurrentOutcome {
    /// Flattens all processes' records into one history for the
    /// linearizability checker.
    pub fn history(&self) -> Vec<CompletedOp<DsuOp>> {
        let mut h: Vec<CompletedOp<DsuOp>> = self
            .records
            .iter()
            .flatten()
            .map(|r| CompletedOp {
                op: r.op,
                result: r.result,
                invoked_at: r.invoked_at,
                returned_at: r.returned_at,
            })
            .collect();
        h.sort_by_key(|o| o.invoked_at);
        h
    }

    /// The final parent snapshot.
    pub fn parents(&self) -> Vec<usize> {
        self.memory.snapshot()
    }

    /// Canonical labels of the final state (walks parent chains; the run is
    /// over, so the state is quiescent).
    pub fn labels(&self) -> Vec<usize> {
        let parents = self.memory.snapshot();
        let mut labels = vec![usize::MAX; parents.len()];
        for (start, label) in labels.iter_mut().enumerate() {
            let mut u = start;
            let mut steps = 0;
            while parents[u] != u {
                u = parents[u];
                steps += 1;
                assert!(steps <= parents.len(), "cycle in parent array");
            }
            *label = u;
        }
        // Normalize to min element per root.
        let mut min_of = vec![usize::MAX; parents.len()];
        for (i, &l) in labels.iter().enumerate() {
            min_of[l] = min_of[l].min(i);
        }
        labels.iter().map(|&l| min_of[l]).collect()
    }
}

/// Runs `processes` over a fresh singleton forest of `n` elements under
/// `scheduler`, up to `max_steps` total steps.
///
/// # Panics
///
/// Panics if the run exceeds `max_steps` without completing (the paper's
/// operations are wait-free on a fixed universe, so a generous budget
/// should never trip).
pub fn run_concurrent(
    n: usize,
    mut processes: Vec<DsuProcess>,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> ConcurrentOutcome {
    let mut machine = Machine::new(Memory::identity(n));
    let report = {
        let mut refs: Vec<&mut dyn Program> =
            processes.iter_mut().map(|p| p as &mut dyn Program).collect();
        machine.run(&mut refs, scheduler, max_steps)
    };
    assert!(report.completed, "simulation exceeded the step budget");
    ConcurrentOutcome {
        report,
        records: processes.into_iter().map(|p| p.records).collect(),
        memory: machine.into_memory(),
    }
}

//! `Find` as a step machine, one shared access per step.

use apram::Memory;

/// Which find variant a machine executes (the runtime mirror of the native
//  crate's type-level policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Paper Algorithm 1: plain walk.
    NoCompaction,
    /// Paper Algorithm 4: one-try splitting.
    OneTry,
    /// Paper Algorithm 5: two-try splitting.
    TwoTry,
    /// Concurrent halving (Anderson–Woll's compaction), for Section 3's
    /// lockstep construction.
    Halving,
    /// Two-pass compression (the Section 6 conjecture): first pass records
    /// the path to a root, second pass CASes each recorded parent at the
    /// root, one try per node.
    Compression,
}

impl Policy {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Policy::NoCompaction => "no-compaction",
            Policy::OneTry => "one-try",
            Policy::TwoTry => "two-try",
            Policy::Halving => "halving",
            Policy::Compression => "compress",
        }
    }
}

/// Where a [`FindSm`] is within its loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// About to read `u.parent`. `tries_left` only matters for two-try.
    ReadParent { tries_left: u8 },
    /// Read `v`; about to read `v.parent`.
    ReadGrand { v: usize, tries_left: u8 },
    /// Read `v`, `w` with `v != w`; about to CAS `u.parent: v -> w`.
    Cas { v: usize, w: usize, tries_left: u8 },
    /// Compression pass 1: walking to the root, recording the path.
    CompressWalk,
    /// Compression pass 2: CASing recorded nodes at `root`, one per step.
    CompressFix { root: usize, idx: usize },
}

/// The `Find(x)` state machine. Each [`step`](FindSm::step) performs
/// at most one shared-memory access and returns `Some(root)` once the root
/// is known and (for compression) the fix-up pass is finished.
#[derive(Debug, Clone)]
pub struct FindSm {
    policy: Policy,
    u: usize,
    phase: Phase,
    /// Pass-1 `(node, read parent)` records; compression only.
    path: Vec<(usize, usize)>,
}

impl FindSm {
    /// A find starting at `x`.
    pub fn new(policy: Policy, x: usize) -> Self {
        let phase = match policy {
            Policy::Compression => Phase::CompressWalk,
            Policy::TwoTry => Phase::ReadParent { tries_left: 2 },
            _ => Phase::ReadParent { tries_left: 1 },
        };
        FindSm { policy, u: x, phase, path: Vec::new() }
    }

    /// The current node of the walk (the paper's variable `u`).
    pub fn current(&self) -> usize {
        self.u
    }

    /// One step (one shared access). `Some(root)` when done.
    pub fn step(&mut self, mem: &mut Memory) -> Option<usize> {
        match self.phase {
            Phase::ReadParent { tries_left } => {
                let v = mem.read(self.u);
                if self.policy == Policy::NoCompaction {
                    if v == self.u {
                        return Some(self.u);
                    }
                    self.u = v;
                    // stay in ReadParent
                } else {
                    self.phase = Phase::ReadGrand { v, tries_left };
                }
                None
            }
            Phase::ReadGrand { v, tries_left } => {
                let w = mem.read(v);
                if w == v {
                    return Some(v);
                }
                self.phase = Phase::Cas { v, w, tries_left };
                None
            }
            Phase::CompressWalk => {
                let p = mem.read(self.u);
                if p == self.u {
                    if self.path.is_empty() {
                        return Some(self.u);
                    }
                    self.phase = Phase::CompressFix { root: self.u, idx: 0 };
                    return None;
                }
                self.path.push((self.u, p));
                self.u = p;
                None
            }
            Phase::CompressFix { root, mut idx } => {
                // Skip records whose read parent already is the root (no
                // CAS needed — local work only).
                while idx < self.path.len() && self.path[idx].1 == root {
                    idx += 1;
                }
                if idx >= self.path.len() {
                    return Some(root);
                }
                let (u, v) = self.path[idx];
                mem.cas(u, v, root);
                self.phase = Phase::CompressFix { root, idx: idx + 1 };
                None
            }
            Phase::Cas { v, w, tries_left } => {
                mem.cas(self.u, v, w);
                match self.policy {
                    Policy::NoCompaction | Policy::Compression => {
                        unreachable!("no split CAS in this policy")
                    }
                    Policy::OneTry => {
                        self.u = v;
                        self.phase = Phase::ReadParent { tries_left: 1 };
                    }
                    Policy::TwoTry => {
                        if tries_left == 2 {
                            // Second try re-reads the (possibly changed)
                            // parent of the same u.
                            self.phase = Phase::ReadParent { tries_left: 1 };
                        } else {
                            self.u = v;
                            self.phase = Phase::ReadParent { tries_left: 2 };
                        }
                    }
                    Policy::Halving => {
                        self.u = w;
                        self.phase = Phase::ReadParent { tries_left: 1 };
                    }
                }
                None
            }
        }
    }
}

/// One **early-termination round** (the compaction body of paper
/// Algorithms 6/7) as a step machine: performs the policy's splitting
/// step(s) at `u` and yields the next current node.
#[derive(Debug, Clone)]
pub struct AdvanceSm {
    policy: Policy,
    u: usize,
    /// Splitting steps remaining in this round (2 for two-try, 1 else).
    rounds_left: u8,
    phase: AdvPhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdvPhase {
    ReadParent,
    ReadGrand { z: usize },
    Cas { z: usize, w: usize },
}

impl AdvanceSm {
    /// An advance round at `u`.
    pub fn new(policy: Policy, u: usize) -> Self {
        let rounds = if policy == Policy::TwoTry { 2 } else { 1 };
        AdvanceSm { policy, u, rounds_left: rounds, phase: AdvPhase::ReadParent }
    }

    /// One step. `Some(next_u)` when the round completes.
    pub fn step(&mut self, mem: &mut Memory) -> Option<usize> {
        match self.phase {
            AdvPhase::ReadParent => {
                let z = mem.read(self.u);
                if self.policy == Policy::NoCompaction {
                    // Plain walk: the round is a single parent read.
                    return Some(z);
                }
                self.phase = AdvPhase::ReadGrand { z };
                None
            }
            AdvPhase::ReadGrand { z } => {
                let w = mem.read(z);
                if w == z {
                    // z is (was) a root: nothing to compact. For halving the
                    // round yields z as well (w == z).
                    return self.finish_round(z);
                }
                self.phase = AdvPhase::Cas { z, w };
                None
            }
            AdvPhase::Cas { z, w } => {
                mem.cas(self.u, z, w);
                let next = if self.policy == Policy::Halving { w } else { z };
                self.finish_round(next)
            }
        }
    }

    fn finish_round(&mut self, next: usize) -> Option<usize> {
        self.rounds_left -= 1;
        if self.rounds_left == 0 {
            Some(next)
        } else {
            // Two-try: second splitting step at the same u.
            self.phase = AdvPhase::ReadParent;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_memory(k: usize) -> Memory {
        let mut cells: Vec<usize> = (1..k).collect();
        cells.push(k - 1);
        Memory::new(cells)
    }

    fn run_find(policy: Policy, mem: &mut Memory, x: usize) -> (usize, u64) {
        let mut sm = FindSm::new(policy, x);
        let before = mem.accesses();
        loop {
            if let Some(root) = sm.step(mem) {
                return (root, mem.accesses() - before);
            }
            assert!(mem.accesses() - before < 10_000, "find ran away");
        }
    }

    #[test]
    fn plain_walk_reads_path_length() {
        let mut mem = path_memory(8);
        let (root, accesses) = run_find(Policy::NoCompaction, &mut mem, 0);
        assert_eq!(root, 7);
        assert_eq!(accesses, 8);
        assert_eq!(mem.snapshot(), vec![1, 2, 3, 4, 5, 6, 7, 7], "no writes");
    }

    #[test]
    fn one_try_matches_native_semantics() {
        // Mirror of the native crate's test: path of 8, find(0) leaves
        // [2,3,4,5,6,7,7,7].
        let mut mem = path_memory(8);
        let (root, _) = run_find(Policy::OneTry, &mut mem, 0);
        assert_eq!(root, 7);
        assert_eq!(mem.snapshot(), vec![2, 3, 4, 5, 6, 7, 7, 7]);
    }

    #[test]
    fn two_try_matches_native_semantics() {
        // Native two-try on a path of 9 leaves node 0 two grandparents up.
        let mut mem = path_memory(9);
        let (root, _) = run_find(Policy::TwoTry, &mut mem, 0);
        assert_eq!(root, 8);
        assert_eq!(mem.peek(0), 3);
    }

    #[test]
    fn halving_matches_native_semantics() {
        let mut mem = path_memory(9);
        let (root, _) = run_find(Policy::Halving, &mut mem, 0);
        assert_eq!(root, 8);
        assert_eq!(mem.snapshot(), vec![2, 2, 4, 4, 6, 6, 8, 8, 8]);
    }

    #[test]
    fn find_on_root_is_quick() {
        for policy in [Policy::NoCompaction, Policy::OneTry, Policy::TwoTry, Policy::Halving] {
            let mut mem = path_memory(4);
            let (root, accesses) = run_find(policy, &mut mem, 3);
            assert_eq!(root, 3);
            assert!(accesses <= 2, "{policy:?} took {accesses} accesses at root");
        }
    }

    #[test]
    fn advance_one_try_splits_once() {
        let mut mem = path_memory(8);
        let mut adv = AdvanceSm::new(Policy::OneTry, 0);
        let next = loop {
            if let Some(n) = adv.step(&mut mem) {
                break n;
            }
        };
        assert_eq!(next, 1);
        assert_eq!(mem.peek(0), 2);
    }

    #[test]
    fn advance_two_try_splits_twice() {
        let mut mem = path_memory(8);
        let mut adv = AdvanceSm::new(Policy::TwoTry, 0);
        let next = loop {
            if let Some(n) = adv.step(&mut mem) {
                break n;
            }
        };
        assert_eq!(next, 2);
        assert_eq!(mem.peek(0), 3);
    }

    #[test]
    fn advance_no_compaction_is_one_read() {
        let mut mem = path_memory(4);
        let mut adv = AdvanceSm::new(Policy::NoCompaction, 1);
        assert_eq!(adv.step(&mut mem), Some(2));
        assert_eq!(mem.accesses(), 1);
    }

    #[test]
    fn advance_halving_jumps_two() {
        let mut mem = path_memory(8);
        let mut adv = AdvanceSm::new(Policy::Halving, 0);
        let next = loop {
            if let Some(n) = adv.step(&mut mem) {
                break n;
            }
        };
        assert_eq!(next, 2);
        assert_eq!(mem.peek(0), 2);
    }

    #[test]
    fn advance_at_root_returns_root() {
        for policy in [Policy::OneTry, Policy::TwoTry, Policy::Halving] {
            let mut mem = path_memory(4);
            let mut adv = AdvanceSm::new(policy, 3);
            let next = loop {
                if let Some(n) = adv.step(&mut mem) {
                    break n;
                }
            };
            assert_eq!(next, 3, "{policy:?}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::TwoTry.label(), "two-try");
        assert_eq!(Policy::NoCompaction.label(), "no-compaction");
        assert_eq!(Policy::Compression.label(), "compress");
    }

    #[test]
    fn compression_matches_native_semantics() {
        // Mirror of the native crate's test: a path of 8 fully flattens.
        let mut mem = path_memory(8);
        let (root, accesses) = run_find(Policy::Compression, &mut mem, 0);
        assert_eq!(root, 7);
        assert_eq!(mem.snapshot(), vec![7, 7, 7, 7, 7, 7, 7, 7]);
        // 8 walk reads + 6 fix CASes (node 6 already pointed at the root).
        assert_eq!(accesses, 8 + 6);
        // Second find: pure walk, no CASes.
        let (root2, accesses2) = run_find(Policy::Compression, &mut mem, 0);
        assert_eq!(root2, 7);
        assert_eq!(accesses2, 2);
    }

    #[test]
    fn compression_on_root_is_one_read() {
        let mut mem = path_memory(4);
        let (root, accesses) = run_find(Policy::Compression, &mut mem, 3);
        assert_eq!(root, 3);
        assert_eq!(accesses, 1);
    }

    #[test]
    fn compression_advance_is_a_split_step() {
        let mut mem = path_memory(8);
        let mut adv = AdvanceSm::new(Policy::Compression, 0);
        let next = loop {
            if let Some(n) = adv.step(&mut mem) {
                break n;
            }
        };
        assert_eq!(next, 1);
        assert_eq!(mem.peek(0), 2);
    }
}

//! The execution engine: steps programs under a scheduler until all
//! terminate, enforcing the one-access-per-step discipline.

use crate::memory::Memory;
use crate::program::{Ctx, Program, StepOutcome};
use crate::scheduler::Scheduler;

/// Summary of a completed (or aborted) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// `true` if every program terminated within the step budget.
    pub completed: bool,
    /// Total steps taken across all processes.
    pub total_steps: u64,
    /// Steps taken by each process.
    pub steps_per_proc: Vec<u64>,
    /// Each process's `Done` value (`None` if it never finished).
    pub results: Vec<Option<usize>>,
    /// Total shared-memory accesses during the run (= the paper's total
    /// work, up to per-step local constants).
    pub memory_accesses: u64,
}

/// Owns the shared [`Memory`] and runs batches of programs over it.
///
/// Memory persists across [`run`](Machine::run) calls, so multi-phase
/// experiments (build sequentially, then query concurrently) run each phase
/// with its own program set and scheduler against the same state.
#[derive(Debug)]
pub struct Machine {
    memory: Memory,
}

impl Machine {
    /// A machine over the given initial memory.
    pub fn new(memory: Memory) -> Self {
        Machine { memory }
    }

    /// The shared memory (for inspection between phases).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Consumes the machine, yielding the memory.
    pub fn into_memory(self) -> Memory {
        self.memory
    }

    /// Runs `programs` under `scheduler` until every program is done or
    /// `max_steps` total steps have been taken.
    ///
    /// Programs are borrowed, not consumed, so callers keep ownership and
    /// can harvest whatever the programs recorded (the DSU processes record
    /// timed operation histories this way).
    ///
    /// # Panics
    ///
    /// Panics if a program performs more than one shared-memory access in a
    /// single step (a violation of the APRAM step discipline), or if the
    /// scheduler returns a process id that is not runnable.
    pub fn run(
        &mut self,
        programs: &mut [&mut dyn Program],
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> RunReport {
        let p = programs.len();
        let mut done: Vec<Option<usize>> = vec![None; p];
        let mut steps_per_proc = vec![0u64; p];
        let mut runnable: Vec<usize> = (0..p).collect();
        let mut total_steps = 0u64;
        let accesses_before = self.memory.accesses();
        while !runnable.is_empty() && total_steps < max_steps {
            let pick = scheduler.next(&runnable);
            assert!(runnable.contains(&pick), "scheduler chose non-runnable process {pick}");
            let before = self.memory.accesses();
            let outcome = {
                let mut ctx = Ctx { mem: &mut self.memory, proc_id: pick, step: total_steps };
                programs[pick].step(&mut ctx)
            };
            let used = self.memory.accesses() - before;
            assert!(used <= 1, "process {pick} performed {used} shared accesses in one step");
            steps_per_proc[pick] += 1;
            total_steps += 1;
            if let StepOutcome::Done(v) = outcome {
                done[pick] = Some(v);
                runnable.retain(|&q| q != pick);
            }
        }
        RunReport {
            completed: runnable.is_empty(),
            total_steps,
            steps_per_proc,
            results: done,
            memory_accesses: self.memory.accesses() - accesses_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobin, Scripted, SeededRandom};

    /// Reads cell `src` then writes the value to cell `dst`; done.
    struct Copy {
        src: usize,
        dst: usize,
        tmp: Option<usize>,
    }
    impl Program for Copy {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
            match self.tmp {
                None => {
                    self.tmp = Some(ctx.mem.read(self.src));
                    StepOutcome::Running
                }
                Some(v) => {
                    ctx.mem.write(self.dst, v);
                    StepOutcome::Done(v)
                }
            }
        }
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let mut machine = Machine::new(Memory::new(vec![42, 0, 0]));
        let mut p0 = Copy { src: 0, dst: 1, tmp: None };
        let mut p1 = Copy { src: 0, dst: 2, tmp: None };
        let report = machine.run(&mut [&mut p0, &mut p1], &mut RoundRobin::new(), 100);
        assert!(report.completed);
        assert_eq!(report.total_steps, 4);
        assert_eq!(report.steps_per_proc, vec![2, 2]);
        assert_eq!(report.results, vec![Some(42), Some(42)]);
        assert_eq!(report.memory_accesses, 4);
        assert_eq!(machine.memory().peek(1), 42);
        assert_eq!(machine.memory().peek(2), 42);
    }

    #[test]
    fn step_budget_aborts() {
        let mut machine = Machine::new(Memory::identity(2));
        struct Forever;
        impl Program for Forever {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
                ctx.mem.read(0);
                StepOutcome::Running
            }
        }
        let mut f = Forever;
        let report = machine.run(&mut [&mut f], &mut RoundRobin::new(), 50);
        assert!(!report.completed);
        assert_eq!(report.total_steps, 50);
        assert_eq!(report.results, vec![None]);
    }

    #[test]
    #[should_panic(expected = "shared accesses in one step")]
    fn double_access_is_caught() {
        struct Greedy;
        impl Program for Greedy {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
                ctx.mem.read(0);
                ctx.mem.read(0);
                StepOutcome::Running
            }
        }
        let mut g = Greedy;
        Machine::new(Memory::identity(1)).run(&mut [&mut g], &mut RoundRobin::new(), 10);
    }

    #[test]
    fn scheduling_order_determines_interleaving() {
        // Two writers race to cell 0; the scripted loser writes last.
        struct WriteMe(usize, bool);
        impl Program for WriteMe {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
                if self.1 {
                    return StepOutcome::Done(0);
                }
                ctx.mem.write(0, self.0);
                self.1 = true;
                StepOutcome::Running
            }
        }
        // Script: proc 1 writes, then proc 0 writes -> final value 100.
        let mut machine = Machine::new(Memory::identity(1));
        let (mut a, mut b) = (WriteMe(100, false), WriteMe(200, false));
        machine.run(&mut [&mut a, &mut b], &mut Scripted::new(vec![1, 0]), 100);
        assert_eq!(machine.memory().peek(0), 100);
        // Reverse script -> final value 200.
        let mut machine = Machine::new(Memory::identity(1));
        let (mut a, mut b) = (WriteMe(100, false), WriteMe(200, false));
        machine.run(&mut [&mut a, &mut b], &mut Scripted::new(vec![0, 1]), 100);
        assert_eq!(machine.memory().peek(0), 200);
    }

    #[test]
    fn memory_persists_across_phases() {
        let mut machine = Machine::new(Memory::new(vec![7, 0]));
        let mut c1 = Copy { src: 0, dst: 1, tmp: None };
        machine.run(&mut [&mut c1], &mut RoundRobin::new(), 10);
        // Phase 2 reads what phase 1 wrote.
        let mut c2 = Copy { src: 1, dst: 0, tmp: None };
        let report = machine.run(&mut [&mut c2], &mut SeededRandom::new(1), 10);
        assert_eq!(report.results, vec![Some(7)]);
    }

    #[test]
    fn empty_program_set_completes_trivially() {
        let mut machine = Machine::new(Memory::identity(1));
        let report = machine.run(&mut [], &mut RoundRobin::new(), 10);
        assert!(report.completed);
        assert_eq!(report.total_steps, 0);
    }
}

//! Processes as step machines.

use crate::memory::Memory;

/// What a program's step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The program has more steps to take.
    Running,
    /// The program terminated with a summary value (meaning is
    /// program-defined; DSU processes return their completed-op count).
    Done(usize),
}

/// Everything a step may touch: the shared memory, plus read-only run
/// context (which process this is and the global step number, used for
/// history timestamps).
#[derive(Debug)]
pub struct Ctx<'a> {
    /// The shared memory. Each step may perform **at most one** access
    /// (`read` / `write` / `cas`); the machine enforces this.
    pub mem: &'a mut Memory,
    /// The id of the process being stepped.
    pub proc_id: usize,
    /// The global step number (0-based) of the step in progress.
    pub step: u64,
}

/// An APRAM process: a state machine advanced one shared-memory access at a
/// time by the [`Machine`](crate::Machine) under a
/// [`Scheduler`](crate::Scheduler)'s control.
///
/// The one-access-per-step discipline is what makes schedules meaningful:
/// two programs' accesses interleave exactly as the scheduler dictates,
/// which is the adversary of the paper's model.
pub trait Program {
    /// Advance by one step, performing at most one shared-memory access.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WriteOnce(bool);
    impl Program for WriteOnce {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
            if self.0 {
                return StepOutcome::Done(99);
            }
            ctx.mem.write(0, ctx.proc_id + 1);
            self.0 = true;
            StepOutcome::Running
        }
    }

    #[test]
    fn ctx_carries_identity() {
        let mut mem = Memory::identity(1);
        let mut p = WriteOnce(false);
        let mut ctx = Ctx { mem: &mut mem, proc_id: 7, step: 0 };
        assert_eq!(p.step(&mut ctx), StepOutcome::Running);
        assert_eq!(p.step(&mut ctx), StepOutcome::Done(99));
        assert_eq!(mem.peek(0), 8);
    }
}

//! A deterministic **asynchronous PRAM (APRAM) simulator** — the paper's
//! machine model as an executable substrate.
//!
//! Jayanti & Tarjan analyze their algorithms on the APRAM of Cole & Zajicek
//! / Gibbons: `p` processes share a memory of single-word cells supporting
//! atomic `read`, `write`, and `Cas`; processes run completely
//! asynchronously (an adversary chooses which process takes the next step),
//! and *total work* is the number of primitive steps summed over processes.
//!
//! Real hardware offers no control over scheduling, so the paper's
//! schedule-sensitive claims — the lockstep halving⇔splitting simulation of
//! Section 3, the lockstep lower bound of Theorem 5.4, linearizability
//! under adversarial interleavings — are exercised here, where the schedule
//! is an explicit, replayable object:
//!
//! * [`Memory`] — the shared cells, with exact access counting;
//! * [`Program`] — a process as a step machine: each
//!   [`step`](Program::step) performs **at most one** shared-memory access
//!   (the machine enforces this);
//! * [`Scheduler`] — who steps next: [`RoundRobin`] (= lockstep rounds),
//!   [`SeededRandom`], [`Weighted`] (adversarially skewed), [`Scripted`]
//!   (an explicit schedule), or [`StarveAfter`] (the crash adversary that
//!   wait-freedom tests use);
//! * [`Machine`] — runs programs to completion, enforcing the one-access
//!   rule and collecting per-process step counts.
//!
//! The DSU algorithms compiled to step machines live in the `apram-dsu`
//! crate.
//!
//! # Example
//!
//! ```
//! use apram::{Machine, Memory, Program, RoundRobin, StepOutcome, Ctx};
//!
//! /// Increments cell 0 with a CAS loop, `k` times.
//! struct Incr { k: usize, pending: Option<usize> }
//! impl Program for Incr {
//!     fn step(&mut self, ctx: &mut Ctx<'_>) -> StepOutcome {
//!         if self.k == 0 { return StepOutcome::Done(0); }
//!         match self.pending.take() {
//!             None => { self.pending = Some(ctx.mem.read(0)); StepOutcome::Running }
//!             Some(old) => {
//!                 if ctx.mem.cas(0, old, old + 1) { self.k -= 1; }
//!                 StepOutcome::Running
//!             }
//!         }
//!     }
//! }
//!
//! let mut machine = Machine::new(Memory::new(vec![0]));
//! let mut a = Incr { k: 3, pending: None };
//! let mut b = Incr { k: 2, pending: None };
//! let report = machine.run(&mut [&mut a, &mut b], &mut RoundRobin::new(), 10_000);
//! assert_eq!(machine.memory().peek(0), 5);
//! assert!(report.completed);
//! ```

pub mod machine;
pub mod memory;
pub mod program;
pub mod scheduler;

pub use machine::{Machine, RunReport};
pub use memory::Memory;
pub use program::{Ctx, Program, StepOutcome};
pub use scheduler::{RoundRobin, Scheduler, Scripted, SeededRandom, StarveAfter, Weighted};

//! Schedulers: the adversary of the APRAM model, reified.
//!
//! A scheduler is asked, each step, to pick one of the currently runnable
//! processes. Determinism of the whole simulation follows from determinism
//! of the scheduler (all of these are deterministic given their seed or
//! script).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Picks which runnable process steps next.
pub trait Scheduler {
    /// Chooses one element of `runnable` (process ids of the not-yet-done
    /// processes, ascending). Must return a member of `runnable`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `runnable` is empty (the machine never
    /// calls with an empty set).
    fn next(&mut self, runnable: &[usize]) -> usize;
}

/// Cycles through the runnable processes in order. With equal-length
/// programs this is exactly the *lockstep* schedule the paper's
/// constructions use (every process takes its `i`-th step before any takes
/// its `i+1`-st).
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh round-robin schedule starting at the lowest process id.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, runnable: &[usize]) -> usize {
        assert!(!runnable.is_empty(), "no runnable process");
        // Find the first runnable id >= cursor, else wrap.
        let pick = runnable.iter().copied().find(|&p| p >= self.cursor).unwrap_or(runnable[0]);
        self.cursor = pick + 1;
        pick
    }
}

/// Uniformly random choice from a seeded generator — the "average"
/// asynchronous adversary; different seeds explore different interleavings
/// reproducibly.
#[derive(Debug)]
pub struct SeededRandom {
    rng: ChaCha12Rng,
}

impl SeededRandom {
    /// A random schedule determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SeededRandom { rng: ChaCha12Rng::seed_from_u64(seed) }
    }
}

impl Scheduler for SeededRandom {
    fn next(&mut self, runnable: &[usize]) -> usize {
        assert!(!runnable.is_empty(), "no runnable process");
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Skewed random choice: process `i` is picked with probability
/// proportional to `weights[i]`. Extreme weights approximate adversaries
/// that nearly starve some processes — useful for shaking out schedules a
/// uniform adversary rarely visits.
#[derive(Debug)]
pub struct Weighted {
    weights: Vec<u64>,
    rng: ChaCha12Rng,
}

impl Weighted {
    /// A weighted schedule; `weights[i]` is process `i`'s relative rate.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or the list is empty.
    pub fn new(weights: Vec<u64>, seed: u64) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().any(|&w| w > 0),
            "need at least one positive weight"
        );
        Weighted { weights, rng: ChaCha12Rng::seed_from_u64(seed) }
    }
}

impl Scheduler for Weighted {
    fn next(&mut self, runnable: &[usize]) -> usize {
        assert!(!runnable.is_empty(), "no runnable process");
        let total: u64 = runnable.iter().map(|&p| self.weights.get(p).copied().unwrap_or(1)).sum();
        if total == 0 {
            // All runnable processes have zero weight: fall back to uniform
            // so the run still terminates.
            return runnable[self.rng.gen_range(0..runnable.len())];
        }
        let mut ticket = self.rng.gen_range(0..total);
        for &p in runnable {
            let w = self.weights.get(p).copied().unwrap_or(1);
            if ticket < w {
                return p;
            }
            ticket -= w;
        }
        unreachable!("ticket exceeded total weight")
    }
}

/// An explicit schedule: step process `script[0]`, then `script[1]`, …
/// Entries naming finished (or non-existent) processes are skipped; if the
/// script runs out, falls back to round-robin. Used by the exact
/// constructions (e.g. the Section 3 lockstep simulation).
#[derive(Debug)]
pub struct Scripted {
    script: std::collections::VecDeque<usize>,
    fallback: RoundRobin,
}

impl Scripted {
    /// A schedule that follows `script` then degrades to round-robin.
    pub fn new(script: Vec<usize>) -> Self {
        Scripted { script: script.into(), fallback: RoundRobin::new() }
    }

    /// Steps remaining in the script.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next(&mut self, runnable: &[usize]) -> usize {
        assert!(!runnable.is_empty(), "no runnable process");
        while let Some(p) = self.script.pop_front() {
            if runnable.contains(&p) {
                return p;
            }
        }
        self.fallback.next(runnable)
    }
}

/// The *crash/starvation adversary*: schedules round-robin until a global
/// step count, then never schedules the victim again (unless it is the
/// only runnable process — the machine requires a choice, which models the
/// victim's steps after everyone else finished and is irrelevant to the
/// wait-freedom experiments that use this).
///
/// Wait-freedom (paper Lemma 3.3) says every *other* process still
/// completes its operations in finitely many of its own steps; this
/// scheduler is how the test suite demonstrates it.
#[derive(Debug)]
pub struct StarveAfter {
    victim: usize,
    after: u64,
    steps: u64,
    inner: RoundRobin,
}

impl StarveAfter {
    /// Starves `victim` once `after` total steps have been scheduled.
    pub fn new(victim: usize, after: u64) -> Self {
        StarveAfter { victim, after, steps: 0, inner: RoundRobin::new() }
    }
}

impl Scheduler for StarveAfter {
    fn next(&mut self, runnable: &[usize]) -> usize {
        assert!(!runnable.is_empty(), "no runnable process");
        self.steps += 1;
        if self.steps > self.after && runnable.len() > 1 {
            let others: Vec<usize> =
                runnable.iter().copied().filter(|&p| p != self.victim).collect();
            return self.inner.next(&others);
        }
        self.inner.next(runnable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let runnable = vec![0, 1, 2];
        let picks: Vec<usize> = (0..6).map(|_| rr.next(&runnable)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_finished() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.next(&[0, 2]), 0);
        assert_eq!(rr.next(&[0, 2]), 2);
        assert_eq!(rr.next(&[0, 2]), 0);
        // Process 0 finishes; only 2 remains.
        assert_eq!(rr.next(&[2]), 2);
        assert_eq!(rr.next(&[2]), 2);
    }

    #[test]
    fn seeded_random_is_reproducible_and_valid() {
        let runnable = vec![3, 5, 9];
        let seq1: Vec<usize> = {
            let mut s = SeededRandom::new(7);
            (0..50).map(|_| s.next(&runnable)).collect()
        };
        let seq2: Vec<usize> = {
            let mut s = SeededRandom::new(7);
            (0..50).map(|_| s.next(&runnable)).collect()
        };
        assert_eq!(seq1, seq2);
        assert!(seq1.iter().all(|p| runnable.contains(p)));
        // All three get picked eventually.
        for p in &runnable {
            assert!(seq1.contains(p));
        }
    }

    #[test]
    fn weighted_respects_skew() {
        let mut s = Weighted::new(vec![1000, 1], 3);
        let runnable = vec![0, 1];
        let picks_of_0 = (0..1000).filter(|_| s.next(&runnable) == 0).count();
        assert!(picks_of_0 > 950, "expected heavy skew, got {picks_of_0}");
    }

    #[test]
    fn weighted_zero_weight_runnable_fallback() {
        let mut s = Weighted::new(vec![0, 1], 3);
        // Only the zero-weight process is runnable: uniform fallback.
        assert_eq!(s.next(&[0]), 0);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn weighted_rejects_all_zero() {
        Weighted::new(vec![0, 0], 0);
    }

    #[test]
    fn scripted_follows_then_falls_back() {
        let mut s = Scripted::new(vec![1, 1, 0]);
        let runnable = vec![0, 1];
        assert_eq!(s.next(&runnable), 1);
        assert_eq!(s.next(&runnable), 1);
        assert_eq!(s.next(&runnable), 0);
        assert_eq!(s.remaining(), 0);
        // Fallback round-robin.
        assert_eq!(s.next(&runnable), 0);
        assert_eq!(s.next(&runnable), 1);
    }

    #[test]
    fn scripted_skips_finished_entries() {
        let mut s = Scripted::new(vec![5, 1]);
        assert_eq!(s.next(&[0, 1]), 1, "5 is not runnable, skip to 1");
    }

    #[test]
    fn starve_after_never_picks_victim_once_tripped() {
        let mut s = StarveAfter::new(0, 3);
        let runnable = vec![0, 1, 2];
        let mut victim_picks_after = 0;
        for step in 0..100 {
            let pick = s.next(&runnable);
            if step >= 3 && pick == 0 {
                victim_picks_after += 1;
            }
        }
        assert_eq!(victim_picks_after, 0);
    }

    #[test]
    fn starve_after_yields_victim_when_alone() {
        let mut s = StarveAfter::new(1, 0);
        assert_eq!(s.next(&[1]), 1, "sole runnable process must be chosen");
    }
}

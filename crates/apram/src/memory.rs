//! The shared memory: single-word cells with atomic `read` / `write` /
//! `cas`, and exact access accounting.
//!
//! The simulator is single-threaded (concurrency is *modeled* by step
//! interleaving), so the cells are plain `usize`s; atomicity is inherent
//! because exactly one process steps at a time.

/// Shared memory of `usize` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    cells: Vec<usize>,
    accesses: u64,
    reads: u64,
    writes: u64,
    cas_ok: u64,
    cas_fail: u64,
}

impl Memory {
    /// Memory initialized to the given cell values.
    pub fn new(cells: Vec<usize>) -> Self {
        Memory { cells, accesses: 0, reads: 0, writes: 0, cas_ok: 0, cas_fail: 0 }
    }

    /// Memory of `n` cells where cell `i` holds `i` — the initial parent
    /// array of a singleton forest.
    pub fn identity(n: usize) -> Self {
        Memory::new((0..n).collect())
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic read of cell `i` (counts as one access).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read(&mut self, i: usize) -> usize {
        self.accesses += 1;
        self.reads += 1;
        self.cells[i]
    }

    /// Atomic write to cell `i` (counts as one access).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn write(&mut self, i: usize, value: usize) {
        self.accesses += 1;
        self.writes += 1;
        self.cells[i] = value;
    }

    /// Atomic compare-and-swap on cell `i`: if the cell holds `old`, store
    /// `new` and return `true`; otherwise return `false`. One access either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cas(&mut self, i: usize, old: usize, new: usize) -> bool {
        self.accesses += 1;
        if self.cells[i] == old {
            self.cells[i] = new;
            self.cas_ok += 1;
            true
        } else {
            self.cas_fail += 1;
            false
        }
    }

    /// Non-counting inspection of cell `i` (for assertions and reports, not
    /// for programs).
    pub fn peek(&self, i: usize) -> usize {
        self.cells[i]
    }

    /// Non-counting snapshot of all cells.
    pub fn snapshot(&self) -> Vec<usize> {
        self.cells.clone()
    }

    /// Total accesses so far (reads + writes + CAS attempts) — the paper's
    /// "total work" once summed over a run.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// `(reads, writes, cas_ok, cas_fail)` breakdown.
    pub fn access_breakdown(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.writes, self.cas_ok, self.cas_fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_cas() {
        let mut m = Memory::new(vec![5, 6]);
        assert_eq!(m.read(0), 5);
        m.write(1, 9);
        assert_eq!(m.read(1), 9);
        assert!(m.cas(0, 5, 7));
        assert!(!m.cas(0, 5, 8));
        assert_eq!(m.peek(0), 7);
        assert_eq!(m.accesses(), 5);
        assert_eq!(m.access_breakdown(), (2, 1, 1, 1));
    }

    #[test]
    fn identity_memory() {
        let m = Memory::identity(4);
        assert_eq!(m.snapshot(), vec![0, 1, 2, 3]);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.accesses(), 0, "peek/snapshot never count");
    }

    #[test]
    #[should_panic]
    fn oob_read_panics() {
        Memory::identity(1).read(1);
    }
}

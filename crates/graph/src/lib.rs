//! Graph substrate and union-find applications.
//!
//! The paper's introduction motivates concurrent set union with graph
//! workloads: maintaining connected components under edge insertions,
//! minimum spanning trees, and percolation testing. This crate provides the
//! graphs, the generators, and those applications, each in a sequential
//! (oracle) and a concurrent (measured) flavor:
//!
//! * [`EdgeList`] / [`Csr`] — graph representations, with a BFS component
//!   oracle that owes nothing to union-find;
//! * [`gen`] — seeded generators: `G(n, m)`, `G(n, p)`, 2-D
//!   grids, R-MAT skewed graphs, and random trees with extra edges;
//! * [`components`] — connected components sequentially and in parallel
//!   over any [`ConcurrentUnionFind`](concurrent_dsu::ConcurrentUnionFind);
//! * [`mst`] — Kruskal (sequential) and a parallel Borůvka built on the
//!   concurrent structure;
//! * [`percolation`] — site-percolation on a square grid (the
//!   Sedgewick–Wayne classroom application the paper cites);
//! * [`incremental`] — on-line connectivity / cycle detection over an edge
//!   stream, plus [`incremental::VersionedConnectivity`]: the same index
//!   with O(1) snapshots, rollback, time-travel queries, and speculative
//!   all-or-nothing bursts (the epoch layer applied); its first payoff is
//!   [`percolation::percolation_threshold_versioned`], which recovers the
//!   exact one-by-one percolation threshold from batched ingestion by
//!   binary search over snapshots.
//!
//! # Example
//!
//! ```
//! use dsu_graph::gen;
//! use dsu_graph::components::{parallel_components, count_components};
//!
//! let g = gen::gnm(1000, 1500, 7);
//! let labels = parallel_components(&g, 4);
//! let k = count_components(&labels);
//! assert!(k >= 1 && k <= 1000);
//! ```

pub mod components;
pub mod gen;
pub mod graph;
pub mod incremental;
pub mod mst;
pub mod percolation;

pub use graph::{Csr, Edge, EdgeList};

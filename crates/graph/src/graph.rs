//! Graph representations: a weighted edge list (the input format every
//! union-find application consumes) and a CSR adjacency view (used by the
//! BFS oracle and anything needing neighborhoods).

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// Other endpoint.
    pub v: usize,
    /// Weight (MST experiments generate *distinct* weights so the minimum
    /// spanning tree is unique).
    pub w: u64,
}

/// An undirected graph as a list of weighted edges over vertices `0..n`.
/// Parallel edges and self-loops are allowed (generators avoid them where
/// it matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList { n, edges: Vec::new() }
    }

    /// Builds from unweighted pairs; edge `i` gets weight `i` (distinct).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let mut g = EdgeList::new(n);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            g.push(u, v, i as u64);
        }
        g
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn push(&mut self, u: usize, v: usize, w: u64) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range 0..{}", self.n);
        self.edges.push(Edge { u, v, w });
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total weight of all edges (u64 saturating).
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().fold(0u64, |acc, e| acc.saturating_add(e.w))
    }

    /// Builds the CSR adjacency view (both directions per edge).
    pub fn to_csr(&self) -> Csr {
        let mut degree = vec![0usize; self.n];
        for e in &self.edges {
            degree[e.u] += 1;
            degree[e.v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; acc];
        for e in &self.edges {
            targets[cursor[e.u]] = e.v;
            cursor[e.u] += 1;
            targets[cursor[e.v]] = e.u;
            cursor[e.v] += 1;
        }
        Csr { offsets, targets }
    }
}

/// Compressed sparse row adjacency (undirected: each edge appears in both
/// endpoint rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl Csr {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbors of `u` (with multiplicity for parallel edges).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Connected-component labels by plain BFS — the union-find-free oracle
    /// all component tests compare against. `labels[v]` is the smallest
    /// vertex in `v`'s component.
    pub fn bfs_components(&self) -> Vec<usize> {
        let n = self.n();
        let mut labels = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if labels[start] != usize::MAX {
                continue;
            }
            labels[start] = start;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    if labels[v] == usize::MAX {
                        labels[v] = start;
                        queue.push_back(v);
                    }
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = EdgeList::new(4);
        g.push(0, 1, 10);
        g.push(1, 2, 20);
        assert_eq!(g.n(), 4);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.total_weight(), 30);
        assert_eq!(g.edges()[1], Edge { u: 1, v: 2, w: 20 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_edge_rejected() {
        EdgeList::new(2).push(0, 2, 1);
    }

    #[test]
    fn from_pairs_assigns_distinct_weights() {
        let g = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.edges()[0].w, 0);
        assert_eq!(g.edges()[1].w, 1);
    }

    #[test]
    fn csr_has_both_directions() {
        let g = EdgeList::from_pairs(4, &[(0, 1), (1, 2), (1, 3)]);
        let csr = g.to_csr();
        assert_eq!(csr.n(), 4);
        assert_eq!(csr.degree(1), 3);
        assert_eq!(csr.neighbors(0), &[1]);
        let mut n1 = csr.neighbors(1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 2, 3]);
    }

    #[test]
    fn bfs_components_on_two_islands() {
        let g = EdgeList::from_pairs(6, &[(0, 1), (1, 2), (3, 4)]);
        let labels = g.to_csr().bfs_components();
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn bfs_handles_self_loops_and_multi_edges() {
        let g = EdgeList::from_pairs(3, &[(0, 0), (0, 1), (0, 1)]);
        let labels = g.to_csr().bfs_components();
        assert_eq!(labels, vec![0, 0, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::new(0);
        let csr = g.to_csr();
        assert_eq!(csr.n(), 0);
        assert!(csr.bfs_components().is_empty());
    }
}

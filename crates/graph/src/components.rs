//! Connected components — the paper's flagship application ("maintaining
//! connected components in a graph under edge insertions").
//!
//! The parallel algorithm is embarrassingly simple *because* the union-find
//! is concurrent: shard the edges across threads, every thread unites its
//! edges' endpoints, done. Correctness needs no coordination at all — set
//! union is confluent, so the final partition is the same for every
//! interleaving.

use concurrent_dsu::{ConcurrentUnionFind, Dsu, TwoTrySplit};
use sequential_dsu::{Compaction, Linking, SeqDsu};

use crate::graph::EdgeList;

/// Component labels via a sequential union-find (rank + halving), the
/// strongest sequential baseline. `labels[v]` is an arbitrary but
/// idempotent representative.
pub fn sequential_components(graph: &EdgeList) -> Vec<usize> {
    let mut dsu = SeqDsu::new(graph.n(), Linking::ByRank, Compaction::Halving);
    for e in graph.edges() {
        dsu.unite(e.u, e.v);
    }
    let mut labels: Vec<usize> = (0..graph.n()).map(|v| dsu.find(v)).collect();
    for v in 0..labels.len() {
        labels[v] = labels[labels[v]];
    }
    labels
}

/// Component labels via the Jayanti–Tarjan structure with `threads`
/// worker threads (two-try splitting).
pub fn parallel_components(graph: &EdgeList, threads: usize) -> Vec<usize> {
    let dsu: Dsu<TwoTrySplit> = Dsu::new(graph.n());
    unite_edges_parallel(&dsu, graph, threads);
    dsu.labels_snapshot()
}

/// Shards `graph`'s edges across `threads` threads, each uniting its
/// share's endpoints in `dsu`. Works with any concurrent union-find — the
/// speedup experiment runs it against the baselines too.
///
/// # Panics
///
/// Panics if `threads == 0` or if `dsu.len() < graph.n()`.
pub fn unite_edges_parallel<D: ConcurrentUnionFind>(dsu: &D, graph: &EdgeList, threads: usize) {
    assert!(threads > 0, "need at least one thread");
    assert!(dsu.len() >= graph.n(), "universe smaller than vertex set");
    let edges = graph.edges();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut i = t;
                while i < edges.len() {
                    let e = edges[i];
                    dsu.unite(e.u, e.v);
                    i += threads;
                }
            });
        }
    });
}

/// Number of distinct components given idempotent labels (`labels[l] == l`
/// for every label `l` in use).
pub fn count_components(labels: &[usize]) -> usize {
    labels.iter().enumerate().filter(|&(v, &l)| v == l).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use sequential_dsu::Partition;

    #[test]
    fn sequential_matches_bfs_oracle() {
        for seed in 0..4 {
            let g = gen::gnm(300, 280, seed);
            let ours = Partition::from_labels(&sequential_components(&g));
            let oracle = Partition::from_labels(&g.to_csr().bfs_components());
            assert_eq!(ours, oracle, "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_bfs_oracle() {
        for seed in 0..4 {
            let g = gen::gnm(500, 700, 100 + seed);
            for threads in [1, 2, 4, 8] {
                let ours = Partition::from_labels(&parallel_components(&g, threads));
                let oracle = Partition::from_labels(&g.to_csr().bfs_components());
                assert_eq!(ours, oracle, "seed {seed}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_works_on_skewed_graphs() {
        let g = gen::rmat_standard(9, 4000, 5);
        let ours = Partition::from_labels(&parallel_components(&g, 8));
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        assert_eq!(ours, oracle);
    }

    #[test]
    fn count_components_counts() {
        let g = gen::tree_plus(64, 10, 3); // connected
        let labels = sequential_components(&g);
        assert_eq!(count_components(&labels), 1);
        let empty = EdgeList::new(5);
        assert_eq!(count_components(&sequential_components(&empty)), 5);
    }

    #[test]
    fn generic_over_baseline_structures() {
        let g = gen::gnm(200, 300, 9);
        let dsu = concurrent_dsu::GrowableDsu::<concurrent_dsu::OneTrySplit>::with_initial(200);
        unite_edges_parallel(&dsu, &g, 4);
        let ours = Partition::from_labels(&dsu.labels_snapshot());
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        assert_eq!(ours, oracle);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let g = EdgeList::new(2);
        let dsu: Dsu = Dsu::new(2);
        unite_edges_parallel(&dsu, &g, 0);
    }
}

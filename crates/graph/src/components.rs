//! Connected components — the paper's flagship application ("maintaining
//! connected components in a graph under edge insertions").
//!
//! The parallel algorithm needs no coordination at all for *correctness* —
//! set union is confluent, so the final partition is the same for every
//! interleaving. What it does need is an ingestion shape that keeps every
//! thread busy and every edge cheap:
//!
//! * **Dynamic chunked scheduling.** Instead of statically pre-assigning
//!   edge `i` to thread `i % p` (which lets one slow or unlucky thread
//!   serialize the tail — on skewed R-MAT inputs the hub edges cluster and
//!   a static shard can be much more expensive than its siblings), a shared
//!   [`AtomicUsize`] cursor hands out fixed-size chunks on demand: fast
//!   threads simply take more chunks. The chunk size trades scheduling
//!   overhead (one `fetch_add` per chunk) against load-balance granularity;
//!   [`DEFAULT_EDGE_CHUNK`] suits the generated graphs here, and
//!   [`unite_edges_parallel_chunked`] exposes the knob.
//! * **Batched ingestion.** Each chunk goes through
//!   [`ConcurrentUnionFind::unite_batch`] — on [`Dsu`] the bulk path
//!   (`concurrent_dsu::bulk`) that overlaps parent-word loads in gather
//!   waves, drops already-connected edges with a read-mostly same-set
//!   filter, and links each survivor with a CAS seeded by the exact root
//!   word the filter observed. [`unite_edges_parallel_cached`] is the
//!   **opt-in** variant whose workers additionally carry a per-thread
//!   hot-root [`RootCache`] across their chunks
//!   ([`ConcurrentUnionFind::unite_batch_cached`]): on the PR 4 bench box
//!   the cache was a measured loss for wave-fed ingestion
//!   (`BENCH_PR4.json`; the waves already preload the levels a hit would
//!   skip), so the default pipeline stays uncached — the variant exists
//!   for re-evaluation on machines where walk loads genuinely miss.
//!   [`unite_edges_parallel_planned`] is the sibling **opt-in** variant
//!   that routes every chunk through the ingestion planner
//!   (`concurrent_dsu::ingest`: intra-batch dedup + block-local radix
//!   buckets) — reach for it when the parent store is much larger than
//!   the LLC or the stream is duplicate-heavy (`BENCH_PR5.json`).
//!
//! The cursor handles every degenerate shape for free: an empty edge list,
//! more threads than edges, or a chunk size larger than the input just
//! leave some workers taking zero chunks.

use std::sync::atomic::{AtomicUsize, Ordering};

use concurrent_dsu::{ConcurrentUnionFind, Dsu, RootCache, TwoTrySplit};
use sequential_dsu::{Compaction, Linking, SeqDsu};

use crate::graph::EdgeList;

/// Edges per chunk handed out by the dynamic scheduler: small enough that
/// a skewed tail spreads across threads, large enough that the cursor
/// `fetch_add` and the batch setup are noise.
pub const DEFAULT_EDGE_CHUNK: usize = 1024;

/// Component labels via a sequential union-find (rank + halving), the
/// strongest sequential baseline. `labels[v]` is an arbitrary but
/// idempotent representative.
pub fn sequential_components(graph: &EdgeList) -> Vec<usize> {
    let mut dsu = SeqDsu::new(graph.n(), Linking::ByRank, Compaction::Halving);
    for e in graph.edges() {
        dsu.unite(e.u, e.v);
    }
    let mut labels: Vec<usize> = (0..graph.n()).map(|v| dsu.find(v)).collect();
    for v in 0..labels.len() {
        labels[v] = labels[labels[v]];
    }
    labels
}

/// Component labels via the Jayanti–Tarjan structure with `threads`
/// worker threads (two-try splitting, batched chunk ingestion).
pub fn parallel_components(graph: &EdgeList, threads: usize) -> Vec<usize> {
    let dsu: Dsu<TwoTrySplit> = Dsu::new(graph.n());
    unite_edges_parallel(&dsu, graph, threads);
    dsu.labels_snapshot()
}

/// Ingests `graph`'s edges into `dsu` on `threads` threads via the dynamic
/// chunk-cursor scheduler with [`DEFAULT_EDGE_CHUNK`]-sized chunks. Works
/// with any concurrent union-find — the speedup experiment runs it against
/// the baselines too.
///
/// # Panics
///
/// Panics if `threads == 0` or if `dsu.len() < graph.n()`.
pub fn unite_edges_parallel<D: ConcurrentUnionFind>(dsu: &D, graph: &EdgeList, threads: usize) {
    unite_edges_parallel_chunked(dsu, graph, threads, DEFAULT_EDGE_CHUNK);
}

/// [`unite_edges_parallel`] with an explicit chunk size: workers repeatedly
/// `fetch_add` a shared cursor to claim the next `chunk_size` edges and
/// feed them to [`ConcurrentUnionFind::unite_batch`], so no thread is ever
/// idle while edges remain — however skewed the edge order is.
///
/// Degenerate inputs (no edges, `threads > edges`, `chunk_size > edges`)
/// need no special cases: workers that find the cursor exhausted exit
/// without touching the structure.
///
/// # Panics
///
/// Panics if `threads == 0`, `chunk_size == 0`, or `dsu.len() < graph.n()`.
/// The shared chunk-cursor worker harness behind the three ingestion
/// variants: workers claim `chunk_size`-edge chunks from a shared cursor
/// and feed each to a per-worker ingest closure built by `make_worker`
/// (the factory shape lets the cached variant own per-thread session
/// state). Degenerate inputs (no edges, `threads > edges`, `chunk_size >
/// edges`) need no special cases: workers that find the cursor exhausted
/// exit without touching the structure.
fn chunked_ingest<D, W, M>(
    dsu: &D,
    graph: &EdgeList,
    threads: usize,
    chunk_size: usize,
    make_worker: M,
) where
    D: ConcurrentUnionFind,
    W: FnMut(&D, &[(usize, usize)]),
    M: Fn() -> W + Copy + Send,
{
    assert!(threads > 0, "need at least one thread");
    assert!(chunk_size > 0, "chunk size must be positive");
    assert!(dsu.len() >= graph.n(), "universe smaller than vertex set");
    let edges = graph.edges();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            s.spawn(move || {
                let mut ingest = make_worker();
                let mut batch: Vec<(usize, usize)> = Vec::with_capacity(chunk_size);
                loop {
                    let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= edges.len() {
                        break;
                    }
                    let end = (start + chunk_size).min(edges.len());
                    batch.clear();
                    batch.extend(edges[start..end].iter().map(|e| (e.u, e.v)));
                    ingest(dsu, &batch);
                }
            });
        }
    });
}

pub fn unite_edges_parallel_chunked<D: ConcurrentUnionFind>(
    dsu: &D,
    graph: &EdgeList,
    threads: usize,
    chunk_size: usize,
) {
    chunked_ingest(dsu, graph, threads, chunk_size, || {
        |d: &D, batch: &[(usize, usize)]| {
            d.unite_batch(batch);
        }
    });
}

/// [`unite_edges_parallel_chunked`], with every chunk routed through the
/// ingestion planner
/// ([`ConcurrentUnionFind::unite_batch_planned`]: intra-batch dedup +
/// block-local radix buckets + spillover pass; structures without a
/// planner fall back to their plain batch path). **Opt-in, not the
/// default pipeline** — the planner pays when the parent store is much
/// larger than the LLC or the edge stream is duplicate-heavy, and costs a
/// planning pass otherwise (`BENCH_PR5.json` records the measured
/// verdict; `concurrent_dsu::ingest` has the selection guide). The final
/// partition is identical either way: the planner only reorders and thins
/// each chunk, and set union is confluent.
///
/// # Panics
///
/// Panics if `threads == 0`, `chunk_size == 0`, or `dsu.len() < graph.n()`.
pub fn unite_edges_parallel_planned<D: ConcurrentUnionFind>(
    dsu: &D,
    graph: &EdgeList,
    threads: usize,
    chunk_size: usize,
) {
    chunked_ingest(dsu, graph, threads, chunk_size, || {
        |d: &D, batch: &[(usize, usize)]| {
            d.unite_batch_planned(batch);
        }
    });
}

/// [`unite_edges_parallel_chunked`], with every worker carrying a
/// per-thread hot-root [`RootCache`] across its chunks
/// ([`ConcurrentUnionFind::unite_batch_cached`]; structures without a
/// cached path ignore the cache). **Opt-in, not the default pipeline**:
/// on the PR 4 bench box this configuration measured 0.22–0.54x the
/// uncached ingestion (`BENCH_PR4.json` — the gather waves already
/// preload the levels a cache hit would skip), so reach for it only on
/// hardware where the walk loads genuinely miss, and A/B it there first.
/// The final partition is identical either way.
///
/// # Panics
///
/// Panics if `threads == 0`, `chunk_size == 0`, or `dsu.len() < graph.n()`.
pub fn unite_edges_parallel_cached<D: ConcurrentUnionFind>(
    dsu: &D,
    graph: &EdgeList,
    threads: usize,
    chunk_size: usize,
) {
    chunked_ingest(dsu, graph, threads, chunk_size, || {
        // Per-worker session state: hot endpoints stay memoized across
        // every chunk this thread claims.
        let mut cache = RootCache::default();
        move |d: &D, batch: &[(usize, usize)]| {
            d.unite_batch_cached(batch, &mut cache);
        }
    });
}

/// Number of distinct components given idempotent labels (`labels[l] == l`
/// for every label `l` in use).
pub fn count_components(labels: &[usize]) -> usize {
    labels.iter().enumerate().filter(|&(v, &l)| v == l).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use sequential_dsu::Partition;

    #[test]
    fn sequential_matches_bfs_oracle() {
        for seed in 0..4 {
            let g = gen::gnm(300, 280, seed);
            let ours = Partition::from_labels(&sequential_components(&g));
            let oracle = Partition::from_labels(&g.to_csr().bfs_components());
            assert_eq!(ours, oracle, "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_bfs_oracle() {
        for seed in 0..4 {
            let g = gen::gnm(500, 700, 100 + seed);
            for threads in [1, 2, 4, 8] {
                let ours = Partition::from_labels(&parallel_components(&g, threads));
                let oracle = Partition::from_labels(&g.to_csr().bfs_components());
                assert_eq!(ours, oracle, "seed {seed}, threads {threads}");
            }
        }
    }

    /// The graph pipeline is layout-agnostic: the same chunked ingestion
    /// over a sharded-store Dsu yields the same components (the batch
    /// path, the cursor scheduler, and labels_snapshot all run through the
    /// word-based ParentStore interface).
    #[test]
    fn parallel_ingestion_works_on_sharded_store() {
        use concurrent_dsu::{ShardSpec, ShardedStore};
        let g = gen::gnm(600, 900, 77);
        let store = ShardedStore::with_spec(
            g.n(),
            Dsu::<TwoTrySplit>::DEFAULT_SEED,
            ShardSpec::with_shards(4),
        );
        let dsu: Dsu<TwoTrySplit, ShardedStore> = Dsu::from_store(store);
        unite_edges_parallel(&dsu, &g, 4);
        let ours = Partition::from_labels(&dsu.labels_snapshot());
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        assert_eq!(ours, oracle);
    }

    /// The opt-in cached ingestion variant produces the identical
    /// partition (the cache layer is verdict-preserving), including for
    /// baseline structures that ignore the cache.
    #[test]
    fn cached_ingestion_variant_matches_oracle() {
        let g = gen::rmat_standard(9, 4000, 11);
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        for threads in [1, 4] {
            let dsu: Dsu = Dsu::new(g.n());
            unite_edges_parallel_cached(&dsu, &g, threads, 256);
            assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle, "{threads} threads");
        }
        let growable = concurrent_dsu::GrowableDsu::<TwoTrySplit>::with_initial(g.n());
        unite_edges_parallel_cached(&growable, &g, 2, DEFAULT_EDGE_CHUNK);
        assert_eq!(Partition::from_labels(&growable.labels_snapshot()), oracle);
    }

    /// The opt-in planned ingestion variant produces the identical
    /// partition (plans only reorder and thin each chunk; set union is
    /// confluent), including for structures that fall back to the plain
    /// batch path, and across degenerate shapes.
    #[test]
    fn planned_ingestion_variant_matches_oracle() {
        let g = gen::rmat_standard(9, 4000, 13);
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        for threads in [1, 4] {
            let dsu: Dsu = Dsu::new(g.n());
            unite_edges_parallel_planned(&dsu, &g, threads, 256);
            assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle, "{threads} threads");
        }
        let growable = concurrent_dsu::GrowableDsu::<TwoTrySplit>::with_initial(g.n());
        unite_edges_parallel_planned(&growable, &g, 2, DEFAULT_EDGE_CHUNK);
        assert_eq!(Partition::from_labels(&growable.labels_snapshot()), oracle);
        // Degenerate shapes: threads > edges, chunks wider than the input.
        for m in [0usize, 1, 3] {
            let pairs: Vec<(usize, usize)> = (0..m).map(|i| (i, i + 1)).collect();
            let tiny = EdgeList::from_pairs(8, &pairs);
            let dsu: Dsu = Dsu::new(8);
            unite_edges_parallel_planned(&dsu, &tiny, 8, 1024);
            assert_eq!(dsu.set_count(), 8 - m, "m={m}");
        }
    }

    #[test]
    fn parallel_works_on_skewed_graphs() {
        let g = gen::rmat_standard(9, 4000, 5);
        let ours = Partition::from_labels(&parallel_components(&g, 8));
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        assert_eq!(ours, oracle);
    }

    /// Regression: the old static sharding assigned empty ranges when
    /// `threads > edges.len()`; the chunk cursor must handle every tiny
    /// shape — zero edges, one edge, more threads than edges, chunks wider
    /// than the input — without panicking and with correct results.
    #[test]
    fn degenerate_shapes_more_threads_than_edges() {
        for m in [0usize, 1, 2, 5] {
            let pairs: Vec<(usize, usize)> = (0..m).map(|i| (i, i + 1)).collect();
            let g = EdgeList::from_pairs(8, &pairs);
            for threads in [1, 3, 8, 16] {
                for chunk in [1, 2, 1024] {
                    let dsu: Dsu = Dsu::new(8);
                    unite_edges_parallel_chunked(&dsu, &g, threads, chunk);
                    assert_eq!(dsu.set_count(), 8 - m, "m={m} threads={threads} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn chunk_sizes_do_not_change_the_partition() {
        let g = gen::gnm(400, 900, 77);
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        for chunk in [1, 7, 64, 4096] {
            let dsu: Dsu = Dsu::new(g.n());
            unite_edges_parallel_chunked(&dsu, &g, 4, chunk);
            assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle, "chunk {chunk}");
        }
    }

    #[test]
    fn count_components_counts() {
        let g = gen::tree_plus(64, 10, 3); // connected
        let labels = sequential_components(&g);
        assert_eq!(count_components(&labels), 1);
        let empty = EdgeList::new(5);
        assert_eq!(count_components(&sequential_components(&empty)), 5);
    }

    #[test]
    fn generic_over_baseline_structures() {
        let g = gen::gnm(200, 300, 9);
        let dsu = concurrent_dsu::GrowableDsu::<concurrent_dsu::OneTrySplit>::with_initial(200);
        unite_edges_parallel(&dsu, &g, 4);
        let ours = Partition::from_labels(&dsu.labels_snapshot());
        let oracle = Partition::from_labels(&g.to_csr().bfs_components());
        assert_eq!(ours, oracle);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let g = EdgeList::new(2);
        let dsu: Dsu = Dsu::new(2);
        unite_edges_parallel(&dsu, &g, 0);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let g = EdgeList::new(2);
        let dsu: Dsu = Dsu::new(2);
        unite_edges_parallel_chunked(&dsu, &g, 1, 0);
    }
}

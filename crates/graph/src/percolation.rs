//! Site percolation on a square grid — the classroom union-find
//! application (Sedgewick & Wayne) cited by the paper's introduction.
//!
//! Sites of an `size × size` grid open one by one in random order; the
//! system *percolates* when an open path connects the top row to the bottom
//! row. Two virtual elements (TOP, BOTTOM) turn the question into one
//! `same_set` query. The percolation threshold for site percolation on the
//! square lattice is ≈ 0.592746; the Monte-Carlo estimate converging there
//! is a nice end-to-end sanity check of any union-find.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use concurrent_dsu::{Dsu, TwoTrySplit, VersionedDsu};
use sequential_dsu::{Compaction, Linking, SeqDsu};

/// One percolation trial: opens sites of an `size × size` grid in a
/// seed-determined uniform order and returns the fraction of open sites at
/// the moment the grid first percolates.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn percolation_threshold(size: usize, seed: u64) -> f64 {
    assert!(size > 0, "grid must be non-empty");
    let n = size * size;
    let top = n;
    let bottom = n + 1;
    let mut dsu = SeqDsu::new(n + 2, Linking::ByRank, Compaction::Halving);
    let mut open = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
    for (steps, &site) in order.iter().enumerate() {
        open[site] = true;
        let (r, c) = (site / size, site % size);
        if r == 0 {
            dsu.unite(site, top);
        }
        if r == size - 1 {
            dsu.unite(site, bottom);
        }
        let mut link = |other: usize| {
            if open[other] {
                dsu.unite(site, other);
            }
        };
        if r > 0 {
            link(site - size);
        }
        if r + 1 < size {
            link(site + size);
        }
        if c > 0 {
            link(site - 1);
        }
        if c + 1 < size {
            link(site + 1);
        }
        if dsu.same_set(top, bottom) {
            return (steps + 1) as f64 / n as f64;
        }
    }
    1.0
}

/// [`percolation_threshold`] with sites opened in bursts of `batch`,
/// united through the batched ingestion path ([`Dsu::unite_batch`]),
/// checking percolation once per burst — the batched-arrival shape the
/// rest of the workspace ingests edges in. The per-burst percolation
/// *probe* runs through a hot-root cache session ([`Dsu::cached`]): `top`
/// and `bottom` are probed every burst and their roots change rarely, so
/// the session's validation branch is nearly always taken — the
/// predictable-hit shape the cache layer is for. Ingestion itself stays
/// uncached (freshly opened sites have no entries to hit; see the
/// measured negative in `BENCH_PR4.json`).
///
/// With `batch == 1` this opens sites in the same seed-determined order
/// and performs the same unites as [`percolation_threshold`], so the two
/// agree exactly (the tests check this); larger bursts coarsen the
/// answer's resolution to the burst boundary (never undershooting the
/// one-by-one threshold), trading precision for bulk ingestion.
///
/// # Panics
///
/// Panics if `size == 0` or `batch == 0`.
pub fn percolation_threshold_batched(size: usize, seed: u64, batch: usize) -> f64 {
    percolation_batched_with(size, seed, batch, false, false)
}

/// [`percolation_threshold_batched`] with each burst routed through the
/// ingestion planner ([`Dsu::unite_batch_planned`]) — the **opt-in**
/// planned counterpart. Percolation bursts are a natural fit for the
/// planner's dedup: adjacent sites opened in the same burst nominate the
/// same lattice edge from both sides, so every such pair is an exact
/// intra-batch duplicate the planner drops before it pays two root walks.
/// The returned threshold is *identical* for every `(size, seed, batch)`:
/// the per-burst probe only observes connectivity, which planning does
/// not change (the tests pin the equality).
///
/// # Panics
///
/// Panics if `size == 0` or `batch == 0`.
pub fn percolation_threshold_batched_planned(size: usize, seed: u64, batch: usize) -> f64 {
    percolation_batched_with(size, seed, batch, true, false)
}

/// [`percolation_threshold_batched`] with a flatten sweep
/// ([`Dsu::flatten`], the PR 9 maintenance pass) run at each burst's
/// ingest→probe boundary. The threshold returned is *identical* for every
/// `(size, seed, batch)` — a sweep only shortens paths, never changes
/// connectivity (the tests pin the equality). **Opt-in**, like every
/// flatten route: the probe here is a single `same_set`, so the `O(n)`
/// sweep only pays for itself when the per-burst query phase is much
/// bigger — this entry point exists to *demonstrate* the phase-boundary
/// pattern (and to A/B it honestly in `flatten_ab`), not as a default.
///
/// # Panics
///
/// Panics if `size == 0` or `batch == 0`.
pub fn percolation_threshold_batched_flattened(size: usize, seed: u64, batch: usize) -> f64 {
    percolation_batched_with(size, seed, batch, false, true)
}

fn percolation_batched_with(
    size: usize,
    seed: u64,
    batch: usize,
    planned: bool,
    flatten: bool,
) -> f64 {
    assert!(size > 0, "grid must be non-empty");
    assert!(batch > 0, "batch must be non-empty");
    let n = size * size;
    let top = n;
    let bottom = n + 1;
    let dsu: Dsu<TwoTrySplit> = Dsu::new(n + 2);
    let mut session = dsu.cached();
    let mut open = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(6 * batch);
    let mut opened = 0;
    for burst in order.chunks(batch) {
        for &site in burst {
            open[site] = true;
        }
        pairs.clear();
        for &site in burst {
            let (r, c) = (site / size, site % size);
            if r == 0 {
                pairs.push((site, top));
            }
            if r == size - 1 {
                pairs.push((site, bottom));
            }
            let mut link = |other: usize| {
                if open[other] {
                    pairs.push((site, other));
                }
            };
            if r > 0 {
                link(site - size);
            }
            if r + 1 < size {
                link(site + size);
            }
            if c > 0 {
                link(site - 1);
            }
            if c + 1 < size {
                link(site + 1);
            }
        }
        if planned {
            dsu.unite_batch_planned(&pairs);
        } else {
            dsu.unite_batch(&pairs);
        }
        if flatten {
            dsu.flatten();
        }
        opened += burst.len();
        if session.same_set(top, bottom) {
            return opened as f64 / n as f64;
        }
    }
    1.0
}

/// The exact one-by-one percolation threshold recovered from **batched**
/// ingestion by binary search over epoch snapshots — the first payoff of
/// the versioned structure ([`VersionedDsu`]).
///
/// [`percolation_threshold`] pays one connectivity probe per opened site;
/// [`percolation_threshold_batched`] amortizes ingestion but coarsens the
/// answer to the burst boundary. This routine gets both: ingest in bursts
/// of `batch`, and when a burst first percolates, binary-search the exact
/// crossing *inside* the burst by rolling back to the pre-burst snapshot
/// (O(1) to take, O(forked segments) to restore) and replaying half-ranges
/// — instead of the linear re-sweep from scratch a snapshotless structure
/// would need.
///
/// The recovered threshold is **exactly** [`percolation_threshold`]`(size,
/// seed)` for every batch size (the tests pin this), because
/// prefix-connectivity is order-independent: whether the first `k` sites
/// of the shuffled order percolate depends only on the *set* of open
/// sites (set union is confluent and site-opening monotone), so
/// "percolates after `k` sites" is a monotone predicate of `k` and binary
/// search recovers its exact threshold.
///
/// # Panics
///
/// Panics if `size == 0` or `batch == 0`.
pub fn percolation_threshold_versioned(size: usize, seed: u64, batch: usize) -> f64 {
    assert!(size > 0, "grid must be non-empty");
    assert!(batch > 0, "batch must be non-empty");
    let n = size * size;
    let top = n;
    let bottom = n + 1;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
    // pos[site] = when `site` opens; an edge (site, neighbor) belongs to
    // the prefix-`k` graph iff both positions are below `k`, and is
    // emitted exactly once — by the later endpoint.
    let mut pos = vec![0usize; n];
    for (k, &site) in order.iter().enumerate() {
        pos[site] = k;
    }
    let edges_for = |range: std::ops::Range<usize>, out: &mut Vec<(usize, usize)>| {
        out.clear();
        for k in range {
            let site = order[k];
            let (r, c) = (site / size, site % size);
            if r == 0 {
                out.push((site, top));
            }
            if r == size - 1 {
                out.push((site, bottom));
            }
            let mut link = |other: usize| {
                if pos[other] < k {
                    out.push((site, other));
                }
            };
            if r > 0 {
                link(site - size);
            }
            if r + 1 < size {
                link(site + size);
            }
            if c > 0 {
                link(site - 1);
            }
            if c + 1 < size {
                link(site + 1);
            }
        }
    };

    let mut dsu: VersionedDsu<TwoTrySplit> = VersionedDsu::with_initial(n + 2);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(6 * batch);
    let mut opened = 0;
    while opened < n {
        let burst_end = (opened + batch).min(n);
        // O(1) guard before the burst — the candidate rollback point.
        let pre = dsu.snapshot();
        edges_for(opened..burst_end, &mut pairs);
        dsu.unite_batch(&pairs);
        if dsu.same_set(top, bottom) {
            // The crossing is in (opened, burst_end]: shrink it to one
            // site by replaying half-ranges off the pre-burst snapshot.
            let (mut lo, mut hi) = (opened, burst_end);
            let mut base = pre;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                dsu.rollback(base); // state: exactly `lo` sites open
                edges_for(lo..mid, &mut pairs);
                dsu.unite_batch(&pairs);
                if dsu.same_set(top, bottom) {
                    hi = mid;
                } else {
                    // Advance the invariant "not percolated at lo": keep
                    // the mid-state and guard it with a fresh snapshot.
                    lo = mid;
                    dsu.drop_snapshot(base);
                    base = dsu.snapshot();
                }
            }
            return hi as f64 / n as f64;
        }
        dsu.drop_snapshot(pre);
        opened = burst_end;
    }
    1.0
}

/// Monte-Carlo estimate of the percolation threshold: the mean of
/// [`percolation_threshold`] over `trials` trials with consecutive seeds.
///
/// # Panics
///
/// Panics if `trials == 0` or `size == 0`.
pub fn percolation_mc(size: usize, trials: usize, base_seed: u64) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let sum: f64 = (0..trials).map(|t| percolation_threshold(size, base_seed + t as u64)).sum();
    sum / trials as f64
}

/// [`percolation_mc`] with trials fanned out over `threads` OS threads —
/// percolation is embarrassingly parallel across trials, which is itself a
/// realistic "many independent union-finds" load pattern.
///
/// # Panics
///
/// Panics if `trials == 0`, `size == 0`, or `threads == 0`.
pub fn percolation_mc_parallel(size: usize, trials: usize, base_seed: u64, threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    assert!(trials > 0, "need at least one trial");
    let sum: f64 = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            handles.push(s.spawn(move || {
                let mut acc = 0.0;
                let mut trial = t;
                while trial < trials {
                    acc += percolation_threshold(size, base_seed + trial as u64);
                    trial += threads;
                }
                acc
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    sum / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one_grid_percolates_immediately() {
        assert_eq!(percolation_threshold(1, 0), 1.0);
    }

    #[test]
    fn threshold_is_a_fraction() {
        for seed in 0..5 {
            let f = percolation_threshold(16, seed);
            assert!((0.0..=1.0).contains(&f));
            // Percolation needs at least `size` open sites (a full column).
            assert!(f >= 16.0 / 256.0);
        }
    }

    #[test]
    fn estimate_near_literature_value() {
        // p_c ≈ 0.5927 for site percolation; a 32x32 grid over 40 seeded
        // trials lands within ±0.06 comfortably (finite-size effects skew
        // slightly high on small grids).
        let est = percolation_mc(32, 40, 1000);
        assert!((0.52..=0.68).contains(&est), "estimate {est} suspiciously far from 0.5927");
    }

    #[test]
    fn batched_with_batch_one_equals_sequential() {
        for seed in 0..6 {
            assert_eq!(
                percolation_threshold_batched(12, seed, 1),
                percolation_threshold(12, seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn batched_thresholds_bracket_the_exact_one() {
        for seed in [3, 9] {
            let exact = percolation_threshold(16, seed);
            for batch in [4, 16, 64] {
                let coarse = percolation_threshold_batched(16, seed, batch);
                // Bursts only check at burst boundaries: the answer rounds
                // the exact threshold up to the next boundary.
                assert!(coarse >= exact, "batch {batch} undershot");
                assert!(
                    coarse - exact <= batch as f64 / 256.0,
                    "batch {batch}: {coarse} too far above {exact}"
                );
            }
        }
    }

    #[test]
    fn planned_bursts_give_identical_thresholds() {
        for seed in [2, 8] {
            for batch in [1, 16, 64] {
                assert_eq!(
                    percolation_threshold_batched_planned(16, seed, batch),
                    percolation_threshold_batched(16, seed, batch),
                    "seed {seed} batch {batch}"
                );
            }
        }
    }

    #[test]
    fn flattened_bursts_give_identical_thresholds() {
        // A sweep between ingest and probe must not move the answer: it
        // rewrites paths, never membership.
        for seed in [2, 8] {
            for batch in [1, 16, 64] {
                assert_eq!(
                    percolation_threshold_batched_flattened(16, seed, batch),
                    percolation_threshold_batched(16, seed, batch),
                    "seed {seed} batch {batch}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn zero_batch_rejected() {
        percolation_threshold_batched(4, 0, 0);
    }

    #[test]
    fn versioned_recovers_the_exact_threshold_for_every_batch() {
        // The whole point: batched ingestion, *one-by-one* answer. Exact
        // equality (not tolerance) across seeds and batch sizes, including
        // batches far larger than the crossing burst.
        for seed in 0..6 {
            let exact = percolation_threshold(12, seed);
            for batch in [1, 3, 16, 50, 144] {
                assert_eq!(
                    percolation_threshold_versioned(12, seed, batch),
                    exact,
                    "seed {seed} batch {batch}"
                );
            }
        }
    }

    #[test]
    fn versioned_one_by_one_grid() {
        assert_eq!(percolation_threshold_versioned(1, 0, 4), 1.0);
    }

    #[test]
    fn parallel_mc_equals_sequential_mc() {
        let seq = percolation_mc(16, 24, 77);
        let par = percolation_mc_parallel(16, 24, 77, 4);
        assert!((seq - par).abs() < 1e-12, "same trials, same mean");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        percolation_mc(4, 0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        percolation_threshold(0, 0);
    }
}

//! Minimum spanning trees/forests: sequential Kruskal (the classic
//! union-find client) and a parallel Borůvka driven by the concurrent
//! structure.
//!
//! Experiments generate **distinct** edge weights, making the MSF unique,
//! so the two algorithms must agree on the exact edge set — a sharp
//! cross-validation of the concurrent `unite`'s linearizable `true/false`
//! return.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use concurrent_dsu::{Dsu, TwoTrySplit};
use sequential_dsu::{Compaction, Linking, SeqDsu};

use crate::graph::EdgeList;

/// The result of an MSF computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msf {
    /// Total weight of the chosen edges.
    pub total_weight: u64,
    /// Indices (into `graph.edges()`) of the chosen edges, sorted.
    pub edges: Vec<usize>,
}

/// Kruskal's algorithm with the sequential union-find: sort edges by
/// weight, take an edge iff its endpoints are in different sets.
pub fn kruskal(graph: &EdgeList) -> Msf {
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_unstable_by_key(|&i| (graph.edges()[i].w, i));
    let mut dsu = SeqDsu::new(graph.n(), Linking::ByRank, Compaction::Halving);
    let mut chosen = Vec::new();
    let mut total = 0u64;
    for i in order {
        let e = graph.edges()[i];
        if e.u != e.v && dsu.unite(e.u, e.v) {
            chosen.push(i);
            total += e.w;
        }
    }
    chosen.sort_unstable();
    Msf { total_weight: total, edges: chosen }
}

/// Edges per chunk claimed from the scan cursor in Borůvka's phase 1 —
/// same dynamic-scheduling rationale as
/// [`components::DEFAULT_EDGE_CHUNK`](crate::components::DEFAULT_EDGE_CHUNK).
const SCAN_CHUNK: usize = 1024;

/// Parallel Borůvka on `threads` threads over the Jayanti–Tarjan structure.
///
/// Each round: (1) workers claim fixed-size edge chunks from a shared
/// cursor (dynamic scheduling, so a skewed edge order cannot serialize one
/// thread) and, for each edge whose endpoints are in different components,
/// `fetch_min` a packed `(weight, edge index)` into both components'
/// "cheapest outgoing" slots; (2) the chosen edges — deduplicated, since
/// both endpoints' components may pick the same edge — are united through
/// the batch API ([`Dsu::unite_batch_results`]), whose per-edge verdicts
/// say exactly which edges joined the forest. With distinct weights there
/// are `O(log n)` rounds and the result is the unique MSF.
///
/// # Panics
///
/// Panics if `threads == 0`, if any weight is `>= 2^40`, or if the graph
/// has `>= 2^24` edges (the packing limits; the experiments stay far
/// below both).
pub fn boruvka_parallel(graph: &EdgeList, threads: usize) -> Msf {
    boruvka_with(graph, threads, false)
}

/// [`boruvka_parallel`] with each round's candidate batch routed through
/// the ingestion planner
/// ([`Dsu::unite_batch_planned_results`]) — the **opt-in** planned
/// counterpart, per the `BENCH_PR5.json` verdict. The result is the same
/// unique MSF: a round's deduplicated cheapest-edge candidates are acyclic
/// under distinct weights (the heaviest edge of a would-be cycle cannot be
/// the cheapest for either endpoint component), so every candidate links
/// regardless of the order the planner drains them in — the tests pin the
/// exact Kruskal agreement.
///
/// # Panics
///
/// Same contract as [`boruvka_parallel`].
pub fn boruvka_parallel_planned(graph: &EdgeList, threads: usize) -> Msf {
    boruvka_with(graph, threads, true)
}

fn boruvka_with(graph: &EdgeList, threads: usize, planned: bool) -> Msf {
    assert!(threads > 0, "need at least one thread");
    assert!(graph.len() < (1 << 24), "too many edges for packed fetch_min");
    const W_SHIFT: u32 = 24;
    let n = graph.n();
    let edges = graph.edges();
    for e in edges {
        assert!(e.w < (1 << 40), "weight {} exceeds 40-bit packing", e.w);
    }
    let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
    let mut chosen: Vec<usize> = Vec::new();
    let mut total = 0u64;
    let cheapest: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    loop {
        // Phase 1: cheapest outgoing edge per current component, scanned in
        // dynamically claimed chunks.
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let dsu = &dsu;
                let cheapest = &cheapest;
                let cursor = &cursor;
                s.spawn(move || loop {
                    // Plain finds, deliberately: a hot-root cache here is
                    // keyed by *element*, and a scan touches each edge's
                    // endpoints once per round — hub re-hits are the only
                    // hit source, the low-hit-rate regime BENCH_PR4
                    // measured as a loss. ROADMAP queues a
                    // predictable-hit variant to A/B on this scan first.
                    let start = cursor.fetch_add(SCAN_CHUNK, Ordering::Relaxed);
                    if start >= edges.len() {
                        break;
                    }
                    let end = (start + SCAN_CHUNK).min(edges.len());
                    for (off, e) in edges[start..end].iter().enumerate() {
                        if e.u != e.v {
                            let ru = dsu.find(e.u);
                            let rv = dsu.find(e.v);
                            if ru != rv {
                                let packed = (e.w << W_SHIFT) | (start + off) as u64;
                                cheapest[ru].fetch_min(packed, Ordering::Relaxed);
                                cheapest[rv].fetch_min(packed, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        // Phase 2 (coordinator): gather the round's candidate edges, then
        // unite them as one batch; the per-edge verdicts are the MSF
        // membership bits.
        let mut candidates: Vec<usize> = Vec::new();
        for slot in cheapest.iter() {
            let packed = slot.swap(u64::MAX, Ordering::Relaxed);
            if packed != u64::MAX {
                candidates.push((packed & ((1 << W_SHIFT) - 1)) as usize);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let pairs: Vec<(usize, usize)> =
            candidates.iter().map(|&i| (edges[i].u, edges[i].v)).collect();
        let linked = if planned {
            dsu.unite_batch_planned_results(&pairs)
        } else {
            dsu.unite_batch_results(&pairs)
        };
        let mut progressed = false;
        for (k, &i) in candidates.iter().enumerate() {
            if linked[k] {
                chosen.push(i);
                total += edges[i].w;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    chosen.sort_unstable();
    Msf { total_weight: total, edges: chosen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Brute force MSF by trying all spanning subsets — only for tiny n.
    fn brute_force_msf_weight(graph: &EdgeList) -> u64 {
        // Kruskal is itself textbook-correct; brute force double-checks it
        // on tiny graphs by enumerating subsets of edges.
        let m = graph.len();
        assert!(m <= 16);
        let target_components = {
            let labels = graph.to_csr().bfs_components();
            labels.iter().enumerate().filter(|&(v, &l)| v == l).count()
        };
        let mut best = u64::MAX;
        'subsets: for mask in 0u32..(1 << m) {
            let mut dsu = SeqDsu::new(graph.n(), Linking::BySize, Compaction::None);
            let mut weight = 0;
            let mut picked = 0;
            for i in 0..m {
                if mask & (1 << i) != 0 {
                    let e = graph.edges()[i];
                    if e.u == e.v || !dsu.unite(e.u, e.v) {
                        continue 'subsets; // cycle edge: never optimal
                    }
                    weight += e.w;
                    picked += 1;
                }
            }
            if dsu.set_count() == target_components && picked == graph.n() - target_components {
                best = best.min(weight);
            }
        }
        best
    }

    #[test]
    fn kruskal_matches_brute_force() {
        for seed in 0..6 {
            let g = gen::gnm(7, 12, seed);
            assert_eq!(kruskal(&g).total_weight, brute_force_msf_weight(&g), "seed {seed}");
        }
    }

    #[test]
    fn kruskal_on_disconnected_graph_builds_forest() {
        let mut g = EdgeList::new(6);
        g.push(0, 1, 5);
        g.push(1, 2, 3);
        g.push(0, 2, 9); // cycle edge, dropped
        g.push(3, 4, 1); // second component; 5 isolated
        let msf = kruskal(&g);
        assert_eq!(msf.total_weight, 9);
        assert_eq!(msf.edges, vec![0, 1, 3]);
    }

    #[test]
    fn boruvka_agrees_with_kruskal_exactly() {
        for seed in 0..5 {
            let g = gen::gnm(400, 1500, 50 + seed);
            let k = kruskal(&g);
            for threads in [1, 4, 8] {
                let b = boruvka_parallel(&g, threads);
                assert_eq!(b.total_weight, k.total_weight, "seed {seed} threads {threads}");
                assert_eq!(b.edges, k.edges, "unique MSF ⇒ identical edge sets");
            }
        }
    }

    /// The planned contender picks the exact same unique MSF: a round's
    /// deduplicated candidates are acyclic with distinct weights, so the
    /// planner's reordering cannot move a verdict.
    #[test]
    fn boruvka_planned_agrees_with_kruskal_exactly() {
        for seed in 0..4 {
            let g = gen::gnm(300, 1100, 90 + seed);
            let k = kruskal(&g);
            for threads in [1, 4] {
                let b = boruvka_parallel_planned(&g, threads);
                assert_eq!(b.total_weight, k.total_weight, "seed {seed} threads {threads}");
                assert_eq!(b.edges, k.edges, "unique MSF ⇒ identical edge sets");
            }
        }
        // Degenerate shapes flow through the planned path too.
        let empty = EdgeList::new(3);
        assert_eq!(boruvka_parallel_planned(&empty, 2).total_weight, 0);
        let mut loops = EdgeList::new(4);
        loops.push(0, 0, 7);
        loops.push(0, 1, 2);
        assert_eq!(boruvka_parallel_planned(&loops, 2).edges, vec![1]);
    }

    #[test]
    fn boruvka_on_grid() {
        let g = gen::grid(12, 17, 4);
        let k = kruskal(&g);
        let b = boruvka_parallel(&g, 4);
        assert_eq!(b.total_weight, k.total_weight);
        // A connected graph's spanning tree has n - 1 edges.
        assert_eq!(b.edges.len(), g.n() - 1);
    }

    #[test]
    fn boruvka_on_disconnected_and_self_loops() {
        let mut g = EdgeList::new(5);
        g.push(0, 0, 7); // self loop ignored
        g.push(0, 1, 2);
        g.push(2, 3, 4);
        let b = boruvka_parallel(&g, 2);
        assert_eq!(b.total_weight, 6);
        assert_eq!(b.edges, vec![1, 2]);
    }

    #[test]
    fn empty_graph_msf() {
        let g = EdgeList::new(3);
        assert_eq!(kruskal(&g).total_weight, 0);
        assert_eq!(boruvka_parallel(&g, 2).total_weight, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn boruvka_zero_threads() {
        boruvka_parallel(&EdgeList::new(1), 0);
    }
}

//! On-line incremental connectivity over an edge stream — the "edge
//! insertions interleaved with connectivity queries" application from the
//! paper's introduction, plus cycle detection (an inserted edge closes a
//! cycle iff its endpoints were already connected).

use concurrent_dsu::{CachedHandle, Dsu, TwoTrySplit};

/// A connectivity index over `0..n` maintained under concurrent edge
/// insertions and queries, backed by the Jayanti–Tarjan structure.
///
/// All methods take `&self` and are safe to call from many threads; both
/// operations are linearizable, so a `connected(x, y) == true` observed by
/// any thread is permanent.
///
/// # Example
///
/// ```
/// use dsu_graph::incremental::IncrementalConnectivity;
///
/// let conn = IncrementalConnectivity::new(4);
/// assert!(!conn.connected(0, 3));
/// assert!(conn.insert(0, 1)); // tree edge
/// assert!(conn.insert(1, 3)); // tree edge
/// assert!(conn.connected(0, 3));
/// assert!(!conn.insert(0, 3)); // closes a cycle
/// ```
#[derive(Debug)]
pub struct IncrementalConnectivity {
    dsu: Dsu<TwoTrySplit>,
}

impl IncrementalConnectivity {
    /// `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        IncrementalConnectivity { dsu: Dsu::new(n) }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.dsu.len()
    }

    /// `true` if the vertex set is empty.
    pub fn is_empty(&self) -> bool {
        self.dsu.is_empty()
    }

    /// Inserts edge `(x, y)`. Returns `true` if it joined two components (a
    /// spanning-forest edge), `false` if it closed a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn insert(&self, x: usize, y: usize) -> bool {
        self.dsu.unite(x, y)
    }

    /// Inserts a burst of edges through the batched ingestion path
    /// (`concurrent_dsu::bulk`): already-connected edges are dropped by a
    /// read-mostly same-set filter before any link CAS. Returns the number
    /// of spanning-forest edges the burst contributed.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch(edges)
    }

    /// [`insert_batch`](IncrementalConnectivity::insert_batch) that also
    /// reports, per edge, whether it was a forest edge (`true`) or closed a
    /// cycle (`false`).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch_results(&self, edges: &[(usize, usize)]) -> Vec<bool> {
        self.dsu.unite_batch_results(edges)
    }

    /// [`insert_batch`](IncrementalConnectivity::insert_batch) routed
    /// through the ingestion planner
    /// ([`Dsu::unite_batch_planned`]): duplicate edges in the burst are
    /// dropped before touching the store and the rest drains in
    /// block-local radix buckets. **Opt-in** — pick it when the vertex
    /// set far exceeds the last-level cache or bursts repeat edges (a log
    /// segment replaying the same link, a crawler re-finding an edge);
    /// the count returned and the resulting connectivity are identical to
    /// [`insert_batch`](IncrementalConnectivity::insert_batch) either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch_planned(edges)
    }

    /// `true` iff `x` and `y` are currently connected.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn connected(&self, x: usize, y: usize) -> bool {
        self.dsu.same_set(x, y)
    }

    /// Current number of connected components.
    pub fn component_count(&self) -> usize {
        self.dsu.set_count()
    }

    /// Opens a per-thread session whose operations route through a
    /// hot-root cache ([`Dsu::cached`]): a worker that repeatedly probes
    /// or extends the same few components resolves them by one validated
    /// load instead of a pointer chase. Results are identical to the
    /// plain methods — sessions and plain calls mix freely across
    /// threads.
    ///
    /// # Example
    ///
    /// ```
    /// use dsu_graph::incremental::IncrementalConnectivity;
    ///
    /// let conn = IncrementalConnectivity::new(4);
    /// let mut session = conn.session();
    /// assert!(session.insert(0, 1));
    /// assert!(session.connected(1, 0));
    /// assert!(conn.connected(0, 1)); // visible to plain calls too
    /// ```
    pub fn session(&self) -> ConnectivitySession<'_> {
        ConnectivitySession { inner: self.dsu.cached() }
    }

    /// One sequential flatten sweep ([`Dsu::flatten`]): pointer-jumps the
    /// whole forest to depth ≤ 1, so a following query burst resolves
    /// every `connected` in O(1) loads per endpoint. Safe concurrently
    /// with ongoing inserts; call it at an ingest→query phase boundary.
    pub fn flatten(&self) {
        self.dsu.flatten();
    }

    /// [`flatten`](IncrementalConnectivity::flatten) fanned over
    /// `threads` workers ([`Dsu::flatten_parallel`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn flatten_parallel(&self, threads: usize) {
        self.dsu.flatten_parallel(threads);
    }
}

/// A per-thread cached session over an [`IncrementalConnectivity`] (see
/// [`IncrementalConnectivity::session`]).
#[derive(Debug)]
pub struct ConnectivitySession<'a> {
    inner: CachedHandle<'a, TwoTrySplit>,
}

impl ConnectivitySession<'_> {
    /// [`IncrementalConnectivity::insert`] through the session cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn insert(&mut self, x: usize, y: usize) -> bool {
        self.inner.unite(x, y)
    }

    /// [`IncrementalConnectivity::insert_batch`] through the session
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch(&mut self, edges: &[(usize, usize)]) -> usize {
        self.inner.unite_batch(edges)
    }

    /// [`IncrementalConnectivity::connected`] through the session cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.inner.same_set(x, y)
    }
}

/// Streams `edges` into a fresh index as one batch and returns
/// `(forest_edges, cycle_edges)`. For any graph,
/// `cycle_edges = m - n + components` — the classic circuit-rank identity
/// the tests verify. Self-loops filter out as cycles (the batch path's
/// same-set read is trivially true for them).
pub fn classify_edges(n: usize, edges: &[(usize, usize)]) -> (usize, usize) {
    let conn = IncrementalConnectivity::new(n);
    let forest = conn.insert_batch(edges);
    (forest, edges.len() - forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn insert_and_query() {
        let conn = IncrementalConnectivity::new(5);
        assert_eq!(conn.len(), 5);
        assert!(!conn.is_empty());
        assert_eq!(conn.component_count(), 5);
        assert!(conn.insert(0, 1));
        assert!(conn.insert(2, 3));
        assert!(!conn.connected(1, 2));
        assert!(conn.insert(1, 2));
        assert!(conn.connected(0, 3));
        assert!(!conn.insert(0, 3));
        assert_eq!(conn.component_count(), 2);
    }

    #[test]
    fn circuit_rank_identity() {
        for seed in 0..4 {
            let g = gen::gnm(200, 500, seed);
            let pairs: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            let (forest, cycles) = classify_edges(200, &pairs);
            let labels = g.to_csr().bfs_components();
            let comps = labels.iter().enumerate().filter(|&(v, &l)| v == l).count();
            assert_eq!(forest, 200 - comps, "forest edges = n - c");
            assert_eq!(cycles, 500 - forest, "cycle edges = m - (n - c)");
        }
    }

    #[test]
    fn self_loops_count_as_cycles() {
        let (forest, cycles) = classify_edges(3, &[(0, 0), (0, 1)]);
        assert_eq!((forest, cycles), (1, 1));
    }

    #[test]
    fn insert_batch_matches_per_edge_inserts() {
        let batched = IncrementalConnectivity::new(64);
        let per_op = IncrementalConnectivity::new(64);
        let edges: Vec<(usize, usize)> =
            (0..200).map(|i| ((i * 37) % 64, (i * 11 + 5) % 64)).collect();
        let results = batched.insert_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.insert(x, y)).collect();
        assert_eq!(results, expected);
        assert_eq!(batched.component_count(), per_op.component_count());
        assert_eq!(
            batched.insert_batch(&edges),
            0,
            "re-inserting the same burst adds no forest edges"
        );
    }

    #[test]
    fn planned_inserts_agree_with_plain_inserts() {
        let planned = IncrementalConnectivity::new(64);
        let plain = IncrementalConnectivity::new(64);
        // A dup-heavy stream: every edge appears twice per burst.
        let edges: Vec<(usize, usize)> = (0..100)
            .flat_map(|i| {
                let e = ((i * 37) % 64, (i * 11 + 5) % 64);
                [e, e]
            })
            .collect();
        for burst in edges.chunks(40) {
            assert_eq!(planned.insert_batch_planned(burst), plain.insert_batch(burst));
        }
        assert_eq!(planned.component_count(), plain.component_count());
        for &(x, y) in &edges {
            assert_eq!(planned.connected(x, y), plain.connected(x, y));
        }
        assert_eq!(planned.insert_batch_planned(&edges), 0, "replay adds no forest edges");
    }

    #[test]
    fn sessions_agree_with_plain_calls() {
        let with_sessions = IncrementalConnectivity::new(256);
        let plain = IncrementalConnectivity::new(256);
        let edges: Vec<(usize, usize)> =
            (0..600).map(|i| ((i * 131) % 256, (i * 17 + 9) % 256)).collect();
        // Four threads share the structure, each through its own session.
        std::thread::scope(|s| {
            for chunk in edges.chunks(150) {
                let conn = &with_sessions;
                s.spawn(move || {
                    let mut session = conn.session();
                    for pair in chunk.chunks(25) {
                        session.insert_batch(pair);
                    }
                    session.connected(chunk[0].0, chunk[0].1)
                });
            }
        });
        for &(x, y) in &edges {
            plain.insert(x, y);
        }
        assert_eq!(with_sessions.component_count(), plain.component_count());
        for &(x, y) in &edges {
            assert!(with_sessions.connected(x, y));
        }
    }

    #[test]
    fn flatten_preserves_connectivity() {
        let n = 512;
        let conn = IncrementalConnectivity::new(n);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        conn.insert_batch(&edges);
        conn.flatten();
        assert!(conn.connected(0, n - 1));
        assert_eq!(conn.component_count(), 1);

        // A sweep racing ongoing inserts must not change any verdict.
        let racy = IncrementalConnectivity::new(n);
        std::thread::scope(|s| {
            let c = &racy;
            s.spawn(move || {
                for &(x, y) in &edges {
                    c.insert(x, y);
                }
            });
            s.spawn(move || {
                for _ in 0..8 {
                    c.flatten_parallel(2);
                }
            });
        });
        assert_eq!(racy.component_count(), 1);
        assert!(racy.connected(0, n - 1));
    }

    #[test]
    fn concurrent_inserts_and_queries() {
        let n = 1000;
        let conn = IncrementalConnectivity::new(n);
        std::thread::scope(|s| {
            // Writers insert a path; readers poll connectivity.
            for t in 0..4 {
                let conn = &conn;
                s.spawn(move || {
                    for i in (t..n - 1).step_by(4) {
                        conn.insert(i, i + 1);
                    }
                });
            }
            for _ in 0..4 {
                let conn = &conn;
                s.spawn(move || {
                    let mut trues = 0;
                    for i in 0..n - 1 {
                        if conn.connected(i, i + 1) {
                            trues += 1;
                        }
                    }
                    trues
                });
            }
        });
        assert!(conn.connected(0, n - 1));
        assert_eq!(conn.component_count(), 1);
    }
}

//! On-line incremental connectivity over an edge stream — the "edge
//! insertions interleaved with connectivity queries" application from the
//! paper's introduction, plus cycle detection (an inserted edge closes a
//! cycle iff its endpoints were already connected), and a versioned
//! variant ([`VersionedConnectivity`]) whose edge bursts are speculative:
//! snapshot → ingest → validate → commit-or-rollback.

use concurrent_dsu::{
    BatchOutcome, CachedHandle, Dsu, Epoch, EpochStore, GrowableDsu, TwoTrySplit, VersionedDsu,
};

/// A connectivity index over `0..n` maintained under concurrent edge
/// insertions and queries, backed by the Jayanti–Tarjan structure.
///
/// All methods take `&self` and are safe to call from many threads; both
/// operations are linearizable, so a `connected(x, y) == true` observed by
/// any thread is permanent.
///
/// # Example
///
/// ```
/// use dsu_graph::incremental::IncrementalConnectivity;
///
/// let conn = IncrementalConnectivity::new(4);
/// assert!(!conn.connected(0, 3));
/// assert!(conn.insert(0, 1)); // tree edge
/// assert!(conn.insert(1, 3)); // tree edge
/// assert!(conn.connected(0, 3));
/// assert!(!conn.insert(0, 3)); // closes a cycle
/// ```
#[derive(Debug)]
pub struct IncrementalConnectivity {
    dsu: Dsu<TwoTrySplit>,
}

impl IncrementalConnectivity {
    /// `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        IncrementalConnectivity { dsu: Dsu::new(n) }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.dsu.len()
    }

    /// `true` if the vertex set is empty.
    pub fn is_empty(&self) -> bool {
        self.dsu.is_empty()
    }

    /// Inserts edge `(x, y)`. Returns `true` if it joined two components (a
    /// spanning-forest edge), `false` if it closed a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn insert(&self, x: usize, y: usize) -> bool {
        self.dsu.unite(x, y)
    }

    /// Inserts a burst of edges through the batched ingestion path
    /// (`concurrent_dsu::bulk`): already-connected edges are dropped by a
    /// read-mostly same-set filter before any link CAS. Returns the number
    /// of spanning-forest edges the burst contributed.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch(edges)
    }

    /// [`insert_batch`](IncrementalConnectivity::insert_batch) that also
    /// reports, per edge, whether it was a forest edge (`true`) or closed a
    /// cycle (`false`).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch_results(&self, edges: &[(usize, usize)]) -> Vec<bool> {
        self.dsu.unite_batch_results(edges)
    }

    /// [`insert_batch`](IncrementalConnectivity::insert_batch) routed
    /// through the ingestion planner
    /// ([`Dsu::unite_batch_planned`]): duplicate edges in the burst are
    /// dropped before touching the store and the rest drains in
    /// block-local radix buckets. **Opt-in** — pick it when the vertex
    /// set far exceeds the last-level cache or bursts repeat edges (a log
    /// segment replaying the same link, a crawler re-finding an edge);
    /// the count returned and the resulting connectivity are identical to
    /// [`insert_batch`](IncrementalConnectivity::insert_batch) either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch_planned(edges)
    }

    /// `true` iff `x` and `y` are currently connected.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn connected(&self, x: usize, y: usize) -> bool {
        self.dsu.same_set(x, y)
    }

    /// Current number of connected components.
    pub fn component_count(&self) -> usize {
        self.dsu.set_count()
    }

    /// Opens a per-thread session whose operations route through a
    /// hot-root cache ([`Dsu::cached`]): a worker that repeatedly probes
    /// or extends the same few components resolves them by one validated
    /// load instead of a pointer chase. Results are identical to the
    /// plain methods — sessions and plain calls mix freely across
    /// threads.
    ///
    /// # Example
    ///
    /// ```
    /// use dsu_graph::incremental::IncrementalConnectivity;
    ///
    /// let conn = IncrementalConnectivity::new(4);
    /// let mut session = conn.session();
    /// assert!(session.insert(0, 1));
    /// assert!(session.connected(1, 0));
    /// assert!(conn.connected(0, 1)); // visible to plain calls too
    /// ```
    pub fn session(&self) -> ConnectivitySession<'_> {
        ConnectivitySession { inner: self.dsu.cached() }
    }

    /// One sequential flatten sweep ([`Dsu::flatten`]): pointer-jumps the
    /// whole forest to depth ≤ 1, so a following query burst resolves
    /// every `connected` in O(1) loads per endpoint. Safe concurrently
    /// with ongoing inserts; call it at an ingest→query phase boundary.
    pub fn flatten(&self) {
        self.dsu.flatten();
    }

    /// [`flatten`](IncrementalConnectivity::flatten) fanned over
    /// `threads` workers ([`Dsu::flatten_parallel`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn flatten_parallel(&self, threads: usize) {
        self.dsu.flatten_parallel(threads);
    }
}

/// A per-thread cached session over an [`IncrementalConnectivity`] (see
/// [`IncrementalConnectivity::session`]).
#[derive(Debug)]
pub struct ConnectivitySession<'a> {
    inner: CachedHandle<'a, TwoTrySplit>,
}

impl ConnectivitySession<'_> {
    /// [`IncrementalConnectivity::insert`] through the session cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn insert(&mut self, x: usize, y: usize) -> bool {
        self.inner.unite(x, y)
    }

    /// [`IncrementalConnectivity::insert_batch`] through the session
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn insert_batch(&mut self, edges: &[(usize, usize)]) -> usize {
        self.inner.unite_batch(edges)
    }

    /// [`IncrementalConnectivity::connected`] through the session cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.inner.same_set(x, y)
    }
}

/// [`IncrementalConnectivity`] over the epoch-versioned structure
/// ([`VersionedDsu`]): same concurrent insert/query surface, plus O(1)
/// snapshots, rollback, time-travel queries, and **speculative bursts** —
/// ingest a batch, validate the resulting connectivity, and either keep it
/// or roll the whole burst back bit-identically. The tool for untrusted
/// edge streams: a poisoned burst (corrupt upstream, failed downstream
/// validation, chaos-injected abort) never contaminates the index.
///
/// Concurrent methods take `&self` exactly like
/// [`IncrementalConnectivity`]'s; version transitions take `&mut self`
/// (quiescence, compiler-enforced — see `concurrent_dsu::epoch`).
///
/// # Example
///
/// ```
/// use dsu_graph::incremental::VersionedConnectivity;
/// use concurrent_dsu::BatchOutcome;
///
/// let mut conn = VersionedConnectivity::new(6);
/// conn.insert(0, 1);
///
/// // A burst that would merge everything is rejected by the validator
/// // and rolls back completely…
/// let outcome = conn.try_insert_batch(
///     &[(1, 2), (2, 3), (3, 4), (4, 5)],
///     |view, _forest_edges| view.component_count() > 2,
/// );
/// assert_eq!(outcome, BatchOutcome::RolledBack);
/// assert!(!conn.connected(1, 2));
///
/// // …while an accepted burst commits.
/// let outcome = conn.try_insert_batch(&[(1, 2)], |view, _| view.connected(0, 2));
/// assert!(outcome.is_committed());
/// assert!(conn.connected(0, 2));
/// ```
#[derive(Debug)]
pub struct VersionedConnectivity {
    dsu: VersionedDsu<TwoTrySplit, EpochStore>,
}

impl VersionedConnectivity {
    /// `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        VersionedConnectivity { dsu: VersionedDsu::with_initial(n) }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.dsu.len()
    }

    /// `true` if the vertex set is empty.
    pub fn is_empty(&self) -> bool {
        self.dsu.is_empty()
    }

    /// See [`IncrementalConnectivity::insert`].
    pub fn insert(&self, x: usize, y: usize) -> bool {
        self.dsu.unite(x, y)
    }

    /// See [`IncrementalConnectivity::insert_batch`].
    pub fn insert_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch(edges)
    }

    /// See [`IncrementalConnectivity::connected`].
    pub fn connected(&self, x: usize, y: usize) -> bool {
        self.dsu.same_set(x, y)
    }

    /// Current number of connected components.
    pub fn component_count(&self) -> usize {
        self.dsu.set_count()
    }

    /// Records an O(1) snapshot of the current connectivity.
    pub fn snapshot(&mut self) -> Epoch {
        self.dsu.snapshot()
    }

    /// Restores the connectivity recorded at `at`, discarding every edge
    /// inserted since (and any later snapshots).
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped or already rolled past.
    pub fn rollback(&mut self, at: Epoch) {
        self.dsu.rollback(at)
    }

    /// Forgets snapshot `at`, releasing its retained segments.
    pub fn drop_snapshot(&mut self, at: Epoch) {
        self.dsu.drop_snapshot(at)
    }

    /// `true` iff `x` and `y` were connected at snapshot `at` — the
    /// time-travel query ("were these hosts in the same partition before
    /// last night's ingest?"). Safe concurrently with ongoing inserts.
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped/rolled past or a vertex did not exist at
    /// `at`.
    pub fn connected_at(&self, at: Epoch, x: usize, y: usize) -> bool {
        self.dsu.same_set_at(at, x, y)
    }

    /// Speculative burst: snapshot, ingest `edges`, hand the post-ingest
    /// connectivity (as a read-only [`ConnectivityView`]) plus the
    /// forest-edge count to `validate`, then commit or roll back
    /// bit-identically. The snapshot is released either way.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range — before any state changes.
    pub fn try_insert_batch<V>(&mut self, edges: &[(usize, usize)], validate: V) -> BatchOutcome
    where
        V: FnOnce(&ConnectivityView<'_>, usize) -> bool,
    {
        self.dsu.try_unite_batch(edges, |dsu, forest_edges| {
            validate(&ConnectivityView { dsu }, forest_edges)
        })
    }

    /// Lifetime counters `(snapshots_taken, rollbacks)`.
    pub fn version_counters(&self) -> (u64, u64) {
        (self.dsu.snapshots_taken(), self.dsu.rollbacks())
    }

    /// The wrapped versioned structure, for the full epoch surface
    /// (auto-snapshot policy, stats reporting, raw store access).
    pub fn dsu(&self) -> &VersionedDsu<TwoTrySplit, EpochStore> {
        &self.dsu
    }

    /// Exclusive access to the wrapped structure (epoch transitions).
    pub fn dsu_mut(&mut self) -> &mut VersionedDsu<TwoTrySplit, EpochStore> {
        &mut self.dsu
    }
}

/// The read-only connectivity a [`VersionedConnectivity::try_insert_batch`]
/// validator sees: the post-ingest state, before the commit/rollback
/// decision.
pub struct ConnectivityView<'a> {
    dsu: &'a GrowableDsu<TwoTrySplit, EpochStore>,
}

impl ConnectivityView<'_> {
    /// `true` iff `x` and `y` are connected in the speculative state.
    pub fn connected(&self, x: usize, y: usize) -> bool {
        self.dsu.same_set(x, y)
    }

    /// Component count of the speculative state.
    pub fn component_count(&self) -> usize {
        self.dsu.set_count()
    }
}

/// Streams `edges` into a fresh index as one batch and returns
/// `(forest_edges, cycle_edges)`. For any graph,
/// `cycle_edges = m - n + components` — the classic circuit-rank identity
/// the tests verify. Self-loops filter out as cycles (the batch path's
/// same-set read is trivially true for them).
pub fn classify_edges(n: usize, edges: &[(usize, usize)]) -> (usize, usize) {
    let conn = IncrementalConnectivity::new(n);
    let forest = conn.insert_batch(edges);
    (forest, edges.len() - forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn insert_and_query() {
        let conn = IncrementalConnectivity::new(5);
        assert_eq!(conn.len(), 5);
        assert!(!conn.is_empty());
        assert_eq!(conn.component_count(), 5);
        assert!(conn.insert(0, 1));
        assert!(conn.insert(2, 3));
        assert!(!conn.connected(1, 2));
        assert!(conn.insert(1, 2));
        assert!(conn.connected(0, 3));
        assert!(!conn.insert(0, 3));
        assert_eq!(conn.component_count(), 2);
    }

    #[test]
    fn circuit_rank_identity() {
        for seed in 0..4 {
            let g = gen::gnm(200, 500, seed);
            let pairs: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            let (forest, cycles) = classify_edges(200, &pairs);
            let labels = g.to_csr().bfs_components();
            let comps = labels.iter().enumerate().filter(|&(v, &l)| v == l).count();
            assert_eq!(forest, 200 - comps, "forest edges = n - c");
            assert_eq!(cycles, 500 - forest, "cycle edges = m - (n - c)");
        }
    }

    #[test]
    fn self_loops_count_as_cycles() {
        let (forest, cycles) = classify_edges(3, &[(0, 0), (0, 1)]);
        assert_eq!((forest, cycles), (1, 1));
    }

    #[test]
    fn insert_batch_matches_per_edge_inserts() {
        let batched = IncrementalConnectivity::new(64);
        let per_op = IncrementalConnectivity::new(64);
        let edges: Vec<(usize, usize)> =
            (0..200).map(|i| ((i * 37) % 64, (i * 11 + 5) % 64)).collect();
        let results = batched.insert_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.insert(x, y)).collect();
        assert_eq!(results, expected);
        assert_eq!(batched.component_count(), per_op.component_count());
        assert_eq!(
            batched.insert_batch(&edges),
            0,
            "re-inserting the same burst adds no forest edges"
        );
    }

    #[test]
    fn planned_inserts_agree_with_plain_inserts() {
        let planned = IncrementalConnectivity::new(64);
        let plain = IncrementalConnectivity::new(64);
        // A dup-heavy stream: every edge appears twice per burst.
        let edges: Vec<(usize, usize)> = (0..100)
            .flat_map(|i| {
                let e = ((i * 37) % 64, (i * 11 + 5) % 64);
                [e, e]
            })
            .collect();
        for burst in edges.chunks(40) {
            assert_eq!(planned.insert_batch_planned(burst), plain.insert_batch(burst));
        }
        assert_eq!(planned.component_count(), plain.component_count());
        for &(x, y) in &edges {
            assert_eq!(planned.connected(x, y), plain.connected(x, y));
        }
        assert_eq!(planned.insert_batch_planned(&edges), 0, "replay adds no forest edges");
    }

    #[test]
    fn sessions_agree_with_plain_calls() {
        let with_sessions = IncrementalConnectivity::new(256);
        let plain = IncrementalConnectivity::new(256);
        let edges: Vec<(usize, usize)> =
            (0..600).map(|i| ((i * 131) % 256, (i * 17 + 9) % 256)).collect();
        // Four threads share the structure, each through its own session.
        std::thread::scope(|s| {
            for chunk in edges.chunks(150) {
                let conn = &with_sessions;
                s.spawn(move || {
                    let mut session = conn.session();
                    for pair in chunk.chunks(25) {
                        session.insert_batch(pair);
                    }
                    session.connected(chunk[0].0, chunk[0].1)
                });
            }
        });
        for &(x, y) in &edges {
            plain.insert(x, y);
        }
        assert_eq!(with_sessions.component_count(), plain.component_count());
        for &(x, y) in &edges {
            assert!(with_sessions.connected(x, y));
        }
    }

    #[test]
    fn flatten_preserves_connectivity() {
        let n = 512;
        let conn = IncrementalConnectivity::new(n);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        conn.insert_batch(&edges);
        conn.flatten();
        assert!(conn.connected(0, n - 1));
        assert_eq!(conn.component_count(), 1);

        // A sweep racing ongoing inserts must not change any verdict.
        let racy = IncrementalConnectivity::new(n);
        std::thread::scope(|s| {
            let c = &racy;
            s.spawn(move || {
                for &(x, y) in &edges {
                    c.insert(x, y);
                }
            });
            s.spawn(move || {
                for _ in 0..8 {
                    c.flatten_parallel(2);
                }
            });
        });
        assert_eq!(racy.component_count(), 1);
        assert!(racy.connected(0, n - 1));
    }

    #[test]
    fn versioned_speculative_bursts_commit_or_vanish() {
        let mut conn = VersionedConnectivity::new(100);
        let good: Vec<(usize, usize)> = (0..49).map(|i| (i, i + 1)).collect();
        // Poisoned burst: connects the two halves the validator insists
        // stay separate.
        let mut poisoned: Vec<(usize, usize)> = (50..99).map(|i| (i, i + 1)).collect();
        poisoned.push((0, 99));

        assert!(conn.try_insert_batch(&good, |v, _| !v.connected(0, 99)).is_committed());
        assert_eq!(
            conn.try_insert_batch(&poisoned, |v, _| !v.connected(0, 99)),
            BatchOutcome::RolledBack
        );
        // The committed burst survives; the poisoned one vanished whole —
        // including its innocent-looking edges.
        assert!(conn.connected(0, 49));
        assert!(!conn.connected(50, 51));
        assert!(!conn.connected(0, 99));
        assert_eq!(conn.component_count(), 51);
        assert_eq!(conn.version_counters(), (2, 1));
    }

    #[test]
    fn versioned_time_travel_and_rollback() {
        let mut conn = VersionedConnectivity::new(8);
        conn.insert(0, 1);
        let before = conn.snapshot();
        conn.insert_batch(&[(1, 2), (3, 4)]);
        assert!(conn.connected(0, 2));
        assert!(!conn.connected_at(before, 0, 2), "0-2 joined after the snapshot");
        assert!(conn.connected_at(before, 0, 1));
        conn.rollback(before);
        assert!(!conn.connected(0, 2));
        assert!(!conn.connected(3, 4));
        assert!(conn.connected(0, 1));
        conn.drop_snapshot(before);
    }

    #[test]
    fn versioned_matches_plain_on_committed_history() {
        // Interleave committed bursts with rejected ones: the versioned
        // index must agree with a plain index fed only the committed edges.
        let mut versioned = VersionedConnectivity::new(64);
        let plain = IncrementalConnectivity::new(64);
        for round in 0..10u64 {
            let burst: Vec<(usize, usize)> = (0..12)
                .map(|i| {
                    let r = concurrent_dsu::order::splitmix64(round * 64 + i);
                    ((r as usize) % 64, ((r >> 32) as usize) % 64)
                })
                .collect();
            let accept = round % 3 != 0;
            let outcome = versioned.try_insert_batch(&burst, |_, _| accept);
            assert_eq!(outcome.is_committed(), accept);
            if accept {
                plain.insert_batch(&burst);
            }
        }
        assert_eq!(versioned.component_count(), plain.component_count());
        for x in 0..64 {
            for y in (x + 1)..64 {
                assert_eq!(versioned.connected(x, y), plain.connected(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn concurrent_inserts_and_queries() {
        let n = 1000;
        let conn = IncrementalConnectivity::new(n);
        std::thread::scope(|s| {
            // Writers insert a path; readers poll connectivity.
            for t in 0..4 {
                let conn = &conn;
                s.spawn(move || {
                    for i in (t..n - 1).step_by(4) {
                        conn.insert(i, i + 1);
                    }
                });
            }
            for _ in 0..4 {
                let conn = &conn;
                s.spawn(move || {
                    let mut trues = 0;
                    for i in 0..n - 1 {
                        if conn.connected(i, i + 1) {
                            trues += 1;
                        }
                    }
                    trues
                });
            }
        });
        assert!(conn.connected(0, n - 1));
        assert_eq!(conn.component_count(), 1);
    }
}

//! Seeded graph generators.
//!
//! All generators are deterministic in their seed (ChaCha12), so every
//! experiment's input can be reproduced exactly. Weights, where present,
//! are a random permutation of `0..m` — distinct, so minimum spanning trees
//! are unique and Kruskal/Borůvka must agree edge-for-edge.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::graph::EdgeList;

/// Uniform `G(n, m)`: `m` edges drawn uniformly (self-loops excluded,
/// parallel edges possible for simplicity — harmless to every consumer).
///
/// # Panics
///
/// Panics if `n < 2` and `m > 0`.
pub fn gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 || m == 0, "need at least two vertices for edges");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut g = EdgeList::new(n);
    let mut weights: Vec<u64> = (0..m as u64).collect();
    weights.shuffle(&mut rng);
    for w in weights {
        let u = rng.gen_range(0..n);
        let v = loop {
            let v = rng.gen_range(0..n);
            if v != u {
                break v;
            }
        };
        g.push(u, v, w);
    }
    g
}

/// Bernoulli `G(n, p)` via geometric skip sampling — `O(m)` expected, no
/// `O(n²)` scan.
///
/// # Panics
///
/// Panics unless `0.0 <= p <= 1.0`.
pub fn gnp(n: usize, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = EdgeList::new(n);
    if n < 2 || p == 0.0 {
        return g;
    }
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut w = 0u64;
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.push(u, v, w);
                w += 1;
            }
        }
        return g;
    }
    // Enumerate candidate pairs (u, v), u < v, in lexicographic order and
    // jump ahead by geometric gaps.
    let ln_q = (1.0 - p).ln();
    let mut idx: i64 = -1;
    let total = n as u128 * (n as u128 - 1) / 2;
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / ln_q).floor() as i64 + 1;
        idx += skip.max(1);
        if (idx as u128) >= total {
            break;
        }
        let (u, v) = pair_from_index(idx as u128, n);
        g.push(u, v, w);
        w += 1;
    }
    g
}

/// Maps a lexicographic index over `{(u, v) : u < v}` back to the pair.
fn pair_from_index(idx: u128, n: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scanning rows
    // arithmetically: row u has (n - 1 - u) pairs.
    let mut u = 0usize;
    let mut remaining = idx;
    loop {
        let row = (n - 1 - u) as u128;
        if remaining < row {
            return (u, u + 1 + remaining as usize);
        }
        remaining -= row;
        u += 1;
    }
}

/// A 2-D grid graph on `rows × cols` vertices with the usual 4-neighbor
/// adjacency; vertex `(r, c)` is `r * cols + c`.
pub fn grid(rows: usize, cols: usize, seed: u64) -> EdgeList {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let n = rows * cols;
    let mut pairs = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                pairs.push((v, v + 1));
            }
            if r + 1 < rows {
                pairs.push((v, v + cols));
            }
        }
    }
    let mut weights: Vec<u64> = (0..pairs.len() as u64).collect();
    weights.shuffle(&mut rng);
    let mut g = EdgeList::new(n);
    for (&(u, v), &w) in pairs.iter().zip(&weights) {
        g.push(u, v, w);
    }
    g
}

/// R-MAT (Chakrabarti–Zhan–Faloutsos): recursively biased quadrant choice
/// produces the skewed degree distributions of real networks — the
/// contention-heavy regime for concurrent union-find. `scale` gives
/// `n = 2^scale` vertices.
///
/// # Panics
///
/// Panics if the quadrant probabilities are negative or don't sum to ~1.
pub fn rmat(scale: u32, m: usize, probs: (f64, f64, f64, f64), seed: u64) -> EdgeList {
    let (a, b, c, d) = probs;
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0, "negative probability");
    assert!(((a + b + c + d) - 1.0).abs() < 1e-9, "probabilities must sum to 1");
    let n = 1usize << scale;
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut weights: Vec<u64> = (0..m as u64).collect();
    weights.shuffle(&mut rng);
    let mut g = EdgeList::new(n);
    for w in weights {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            g.push(u, v, w);
        }
    }
    g
}

/// The standard R-MAT parameters (0.57, 0.19, 0.19, 0.05).
pub fn rmat_standard(scale: u32, m: usize, seed: u64) -> EdgeList {
    rmat(scale, m, (0.57, 0.19, 0.19, 0.05), seed)
}

/// A uniformly random spanning tree (each vertex `i > 0` attaches to a
/// uniform vertex `< i`, then labels are shuffled) plus `extra` uniform
/// non-loop edges: connected by construction, with tunable density.
pub fn tree_plus(n: usize, extra: usize, seed: u64) -> EdgeList {
    assert!(n >= 1, "need at least one vertex");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut relabel: Vec<usize> = (0..n).collect();
    relabel.shuffle(&mut rng);
    let m = n.saturating_sub(1) + extra;
    let mut weights: Vec<u64> = (0..m as u64).collect();
    weights.shuffle(&mut rng);
    let mut g = EdgeList::new(n);
    let mut wi = 0;
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.push(relabel[i], relabel[j], weights[wi]);
        wi += 1;
    }
    for _ in 0..extra {
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n);
        let v = loop {
            let v = rng.gen_range(0..n);
            if v != u {
                break v;
            }
        };
        g.push(u, v, weights[wi]);
        wi += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Csr;

    fn component_count(csr: &Csr) -> usize {
        let labels = csr.bfs_components();
        labels.iter().enumerate().filter(|&(i, &l)| i == l).count()
    }

    #[test]
    fn gnm_shape_and_determinism() {
        let g = gnm(100, 250, 3);
        assert_eq!(g.n(), 100);
        assert_eq!(g.len(), 250);
        assert_eq!(g, gnm(100, 250, 3));
        assert_ne!(g, gnm(100, 250, 4));
        for e in g.edges() {
            assert_ne!(e.u, e.v, "no self-loops");
        }
    }

    #[test]
    fn gnm_weights_are_distinct() {
        let g = gnm(50, 200, 5);
        let mut ws: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 200);
    }

    #[test]
    fn gnp_extremes() {
        assert!(gnp(20, 0.0, 1).is_empty());
        let full = gnp(20, 1.0, 1);
        assert_eq!(full.len(), 20 * 19 / 2);
        // All pairs distinct.
        let mut pairs: Vec<(usize, usize)> = full.edges().iter().map(|e| (e.u, e.v)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 20 * 19 / 2);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let n = 200;
        let p = 0.05;
        let g = gnp(n, p, 7);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.len() as f64;
        assert!((got - expected).abs() < 0.25 * expected, "got {got}, expected ~{expected}");
        for e in g.edges() {
            assert!(e.u < e.v, "gnp emits ordered pairs");
        }
    }

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 7;
        let mut idx = 0u128;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(idx, n), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn grid_edge_count_and_connectivity() {
        let g = grid(5, 8, 2);
        assert_eq!(g.n(), 40);
        assert_eq!(g.len(), 5 * 7 + 4 * 8); // horizontal + vertical
        assert_eq!(component_count(&g.to_csr()), 1);
    }

    #[test]
    fn rmat_shape_and_skew() {
        let g = rmat_standard(10, 8000, 11);
        assert_eq!(g.n(), 1024);
        assert!(g.len() <= 8000); // self-loop candidates dropped
        assert!(g.len() > 7000, "too many dropped: {}", g.len());
        // Degree skew: the max degree should dwarf the average.
        let csr = g.to_csr();
        let max_deg = (0..1024).map(|v| csr.degree(v)).max().unwrap();
        let avg = 2.0 * g.len() as f64 / 1024.0;
        assert!(max_deg as f64 > 4.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_checks_probabilities() {
        rmat(4, 10, (0.5, 0.5, 0.5, 0.5), 0);
    }

    #[test]
    fn tree_plus_is_connected() {
        for seed in 0..5 {
            let g = tree_plus(500, 100, seed);
            assert_eq!(g.n(), 500);
            assert_eq!(g.len(), 599);
            assert_eq!(component_count(&g.to_csr()), 1);
        }
    }

    #[test]
    fn tree_plus_single_vertex() {
        let g = tree_plus(1, 0, 0);
        assert_eq!(g.n(), 1);
        assert!(g.is_empty());
    }
}

//! Linearizability checking for concurrent histories.
//!
//! Lemma 3.2 of the paper claims the concurrent operations are
//! linearizable: every concurrent execution's results are explained by
//! *some* total order of the operations consistent with real time. This
//! crate checks that claim mechanically on recorded histories:
//!
//! * [`CompletedOp`] — one operation with its real-time interval and
//!   result;
//! * [`SeqSpec`] — a sequential specification (state + `apply`);
//! * [`check_linearizable`] — Wing–Gong style exhaustive search with
//!   memoized `(linearized-set, state)` failures, returning a witness
//!   order or a refutation;
//! * [`DsuSpec`] / [`DsuOp`] — the disjoint-set-union specification.
//!
//! The search is exponential in the worst case (the problem is NP-hard),
//! but histories from the APRAM simulator are small (tens of ops) and the
//! memoization plus the real-time pruning make checking instantaneous. A
//! DSU-specific boon: the state after any *set* of unites is independent of
//! their order (set union is confluent), so distinct search paths collapse
//! into few memo states.
//!
//! # Example
//!
//! ```
//! use linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec};
//!
//! // Two sequential ops: unite {0,1}, then observe it.
//! let history = vec![
//!     CompletedOp { op: DsuOp::Unite(0, 1), result: true, invoked_at: 0, returned_at: 1 },
//!     CompletedOp { op: DsuOp::SameSet(0, 1), result: true, invoked_at: 2, returned_at: 3 },
//! ];
//! let witness = check_linearizable(&DsuSpec::new(2), &history).expect("linearizable");
//! assert_eq!(witness, vec![0, 1]);
//! ```

use std::collections::HashSet;
use std::hash::Hash;

/// One completed operation in a concurrent history.
///
/// `invoked_at < returned_at` timestamps come from any global clock (the
/// APRAM simulator uses its step counter). Operation A *happens before* B
/// iff `A.returned_at < B.invoked_at`; overlapping operations may linearize
/// in either order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedOp<O> {
    /// The operation.
    pub op: O,
    /// Its returned value (all our specs return booleans).
    pub result: bool,
    /// Global time at invocation.
    pub invoked_at: u64,
    /// Global time at response.
    pub returned_at: u64,
}

/// A sequential specification: deterministic state machine with
/// boolean-returning operations.
pub trait SeqSpec {
    /// Operation type.
    type Op: Copy;
    /// State type; `Hash + Eq + Clone` enables memoization.
    type State: Clone + Hash + Eq;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the successor state and the
    /// operation's return value.
    fn apply(&self, state: &Self::State, op: Self::Op) -> (Self::State, bool);
}

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizeError {
    /// No total order consistent with real time reproduces the results.
    NotLinearizable,
    /// The history is too large for the bitmask search (> 64 ops).
    TooLarge(usize),
}

impl std::fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearizeError::NotLinearizable => write!(f, "history is not linearizable"),
            LinearizeError::TooLarge(n) => {
                write!(f, "history has {n} operations; checker supports at most 64")
            }
        }
    }
}

impl std::error::Error for LinearizeError {}

/// Searches for a linearization of `history` under `spec`.
///
/// Returns the witness: indices into `history` in linearization order.
///
/// # Errors
///
/// [`LinearizeError::NotLinearizable`] if no valid order exists;
/// [`LinearizeError::TooLarge`] if the history exceeds 64 operations.
pub fn check_linearizable<S: SeqSpec>(
    spec: &S,
    history: &[CompletedOp<S::Op>],
) -> Result<Vec<usize>, LinearizeError> {
    let n = history.len();
    if n > 64 {
        return Err(LinearizeError::TooLarge(n));
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut failed: HashSet<(u64, S::State)> = HashSet::new();
    let mut witness = Vec::with_capacity(n);
    if dfs(spec, history, 0, &spec.init(), full, &mut failed, &mut witness) {
        Ok(witness)
    } else {
        Err(LinearizeError::NotLinearizable)
    }
}

fn dfs<S: SeqSpec>(
    spec: &S,
    history: &[CompletedOp<S::Op>],
    taken: u64,
    state: &S::State,
    full: u64,
    failed: &mut HashSet<(u64, S::State)>,
    witness: &mut Vec<usize>,
) -> bool {
    if taken == full {
        return true;
    }
    if failed.contains(&(taken, state.clone())) {
        return false;
    }
    // An op may linearize next iff it is pending and no other pending op
    // *returned* before it was *invoked* (that op would have to come first).
    let min_pending_return = history
        .iter()
        .enumerate()
        .filter(|(i, _)| taken & (1 << i) == 0)
        .map(|(_, o)| o.returned_at)
        .min()
        .expect("pending op exists");
    for i in 0..history.len() {
        if taken & (1 << i) != 0 {
            continue;
        }
        let op = &history[i];
        if op.invoked_at > min_pending_return {
            continue; // some pending op precedes it in real time
        }
        let (next_state, ret) = spec.apply(state, op.op);
        if ret != op.result {
            continue;
        }
        witness.push(i);
        if dfs(spec, history, taken | (1 << i), &next_state, full, failed, witness) {
            return true;
        }
        witness.pop();
    }
    failed.insert((taken, state.clone()));
    false
}

// ---------------------------------------------------------------------------
// Recording native histories.
// ---------------------------------------------------------------------------

/// A shared logical clock for recording [`CompletedOp`]s from *real*
/// threaded executions (as opposed to the APRAM simulator's step counter).
///
/// Timestamps come from one atomic counter bumped with `SeqCst`, so the
/// stamps form a single total order consistent with real time: if
/// operation A's response stamp was drawn before operation B's invocation
/// stamp, A really did return before B was invoked. That is exactly the
/// happens-before relation [`check_linearizable`] consumes — no wall
/// clock, no cross-core clock skew.
///
/// Each thread records into its own `Vec` and the harness concatenates at
/// join time; the recorder itself is just the clock, so sharing it is one
/// `&HistoryRecorder` capture:
///
/// ```
/// use linearize::{check_linearizable, DsuOp, DsuSpec, HistoryRecorder};
///
/// let rec = HistoryRecorder::new();
/// let a = rec.record(DsuOp::Unite(0, 1), || true);
/// let b = rec.record(DsuOp::SameSet(0, 1), || true);
/// assert!(a.returned_at < b.invoked_at);
/// check_linearizable(&DsuSpec::new(2), &[a, b]).expect("linearizable");
/// ```
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: std::sync::atomic::AtomicU64,
}

impl HistoryRecorder {
    /// A recorder whose clock starts at 0.
    pub fn new() -> Self {
        HistoryRecorder { clock: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Draws the next timestamp.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
    }

    /// Runs `run` between two clock draws and packages the result: the
    /// invocation stamp is drawn immediately before calling `run`, the
    /// response stamp immediately after it returns.
    pub fn record<O>(&self, op: O, run: impl FnOnce() -> bool) -> CompletedOp<O> {
        let invoked_at = self.now();
        let result = run();
        let returned_at = self.now();
        CompletedOp { op, result, invoked_at, returned_at }
    }
}

// ---------------------------------------------------------------------------
// The DSU specification.
// ---------------------------------------------------------------------------

/// A disjoint-set-union operation for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsuOp {
    /// Merge the sets of the two elements; returns `true` iff they were
    /// distinct.
    Unite(usize, usize),
    /// Query whether the two elements share a set.
    SameSet(usize, usize),
}

/// Canonical partition state: `labels[i]` = smallest element of `i`'s set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DsuState {
    labels: Vec<usize>,
}

/// The sequential specification of disjoint set union over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct DsuSpec {
    n: usize,
}

impl DsuSpec {
    /// A spec over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        DsuSpec { n }
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl SeqSpec for DsuSpec {
    type Op = DsuOp;
    type State = DsuState;

    fn init(&self) -> DsuState {
        DsuState { labels: (0..self.n).collect() }
    }

    fn apply(&self, state: &DsuState, op: DsuOp) -> (DsuState, bool) {
        match op {
            DsuOp::SameSet(x, y) => (state.clone(), state.labels[x] == state.labels[y]),
            DsuOp::Unite(x, y) => {
                let (lx, ly) = (state.labels[x], state.labels[y]);
                if lx == ly {
                    return (state.clone(), false);
                }
                let (keep, drop) = if lx < ly { (lx, ly) } else { (ly, lx) };
                let mut labels = state.labels.clone();
                for l in &mut labels {
                    if *l == drop {
                        *l = keep;
                    }
                }
                (DsuState { labels }, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(op: DsuOp, result: bool, invoked_at: u64, returned_at: u64) -> CompletedOp<DsuOp> {
        CompletedOp { op, result, invoked_at, returned_at }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert_eq!(check_linearizable(&DsuSpec::new(3), &[]), Ok(vec![]));
    }

    #[test]
    fn recorder_stamps_respect_real_time_across_threads() {
        // 4 threads × 8 recorded no-op "operations": every stamp is
        // unique, every interval is well-formed, and ops recorded strictly
        // after another thread's response got later invocation stamps.
        let rec = HistoryRecorder::new();
        let mut per_thread: Vec<Vec<CompletedOp<DsuOp>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let rec = &rec;
                    s.spawn(move || {
                        (0..8)
                            .map(|i| rec.record(DsuOp::SameSet(t, t), || i % 2 == 0))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().unwrap());
            }
        });
        let mut stamps = Vec::new();
        for ops in &per_thread {
            for w in ops.windows(2) {
                assert!(w[0].returned_at < w[1].invoked_at, "program order preserved");
            }
            for o in ops {
                assert!(o.invoked_at < o.returned_at);
                stamps.push(o.invoked_at);
                stamps.push(o.returned_at);
            }
        }
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 4 * 8 * 2, "stamps are globally unique");
    }

    #[test]
    fn sequential_history_linearizes_in_order() {
        let h = vec![
            op(DsuOp::SameSet(0, 1), false, 0, 1),
            op(DsuOp::Unite(0, 1), true, 2, 3),
            op(DsuOp::SameSet(0, 1), true, 4, 5),
            op(DsuOp::Unite(1, 0), false, 6, 7),
        ];
        assert_eq!(check_linearizable(&DsuSpec::new(2), &h), Ok(vec![0, 1, 2, 3]));
    }

    #[test]
    fn overlap_allows_reordering() {
        // SameSet overlapping a Unite may see it or not; both answers are
        // linearizable.
        for observed in [true, false] {
            let h =
                vec![op(DsuOp::Unite(0, 1), true, 0, 10), op(DsuOp::SameSet(0, 1), observed, 5, 6)];
            assert!(
                check_linearizable(&DsuSpec::new(2), &h).is_ok(),
                "observed = {observed} must be linearizable"
            );
        }
    }

    #[test]
    fn stale_true_before_any_unite_is_rejected() {
        // SameSet returns true, completing strictly before the only Unite
        // is invoked: impossible.
        let h = vec![op(DsuOp::SameSet(0, 1), true, 0, 1), op(DsuOp::Unite(0, 1), true, 2, 3)];
        assert_eq!(check_linearizable(&DsuSpec::new(2), &h), Err(LinearizeError::NotLinearizable));
    }

    #[test]
    fn forgotten_union_is_rejected() {
        // Unite completes, then a later SameSet still says false: once
        // together, always together.
        let h = vec![op(DsuOp::Unite(0, 1), true, 0, 1), op(DsuOp::SameSet(0, 1), false, 2, 3)];
        assert_eq!(check_linearizable(&DsuSpec::new(2), &h), Err(LinearizeError::NotLinearizable));
    }

    #[test]
    fn double_successful_unite_is_rejected() {
        // Two Unites of the same pair cannot both return true if the first
        // completes before the second starts.
        let h = vec![op(DsuOp::Unite(0, 1), true, 0, 1), op(DsuOp::Unite(0, 1), true, 2, 3)];
        assert_eq!(check_linearizable(&DsuSpec::new(2), &h), Err(LinearizeError::NotLinearizable));
        // But two *overlapping* unites: exactly one true and one false is
        // fine (and required).
        let h = vec![op(DsuOp::Unite(0, 1), true, 0, 10), op(DsuOp::Unite(0, 1), false, 0, 10)];
        assert!(check_linearizable(&DsuSpec::new(2), &h).is_ok());
    }

    #[test]
    fn transitive_story_across_three_procs() {
        let h = vec![
            op(DsuOp::Unite(0, 1), true, 0, 3),
            op(DsuOp::Unite(1, 2), true, 1, 4),
            op(DsuOp::SameSet(0, 2), true, 5, 6),
        ];
        let w = check_linearizable(&DsuSpec::new(3), &h).unwrap();
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn witness_replays_correctly() {
        let h = vec![
            op(DsuOp::Unite(2, 3), true, 0, 9),
            op(DsuOp::SameSet(2, 3), false, 1, 2),
            op(DsuOp::SameSet(2, 3), true, 7, 8),
        ];
        let spec = DsuSpec::new(4);
        let w = check_linearizable(&spec, &h).unwrap();
        // Replaying the witness reproduces every result.
        let mut state = spec.init();
        for &i in &w {
            let (next, ret) = spec.apply(&state, h[i].op);
            assert_eq!(ret, h[i].result);
            state = next;
        }
    }

    #[test]
    fn too_large_history_is_reported() {
        let h: Vec<CompletedOp<DsuOp>> =
            (0..65).map(|i| op(DsuOp::SameSet(0, 0), true, i, i)).collect();
        assert_eq!(check_linearizable(&DsuSpec::new(1), &h), Err(LinearizeError::TooLarge(65)));
    }

    #[test]
    fn spec_apply_semantics() {
        let spec = DsuSpec::new(4);
        let s0 = spec.init();
        let (s1, r1) = spec.apply(&s0, DsuOp::Unite(3, 1));
        assert!(r1);
        let (_, q) = spec.apply(&s1, DsuOp::SameSet(1, 3));
        assert!(q);
        let (s2, r2) = spec.apply(&s1, DsuOp::Unite(1, 3));
        assert!(!r2);
        assert_eq!(s1, s2);
        assert_eq!(spec.n(), 4);
    }

    #[test]
    fn error_display() {
        assert!(LinearizeError::NotLinearizable.to_string().contains("not linearizable"));
        assert!(LinearizeError::TooLarge(70).to_string().contains("70"));
    }
}

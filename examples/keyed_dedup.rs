//! Keyed entity resolution: dedup user records by any shared identifier.
//!
//! The classic record-linkage shape: each incoming record carries several
//! identifiers (email, username, device id), and two records belong to the
//! same user if they share *any* identifier. That is union-find over
//! string keys — no dense ids exist up front, records arrive concurrently
//! from many ingest threads, and queries race ingestion.
//!
//! `KeyedDsu<String>` does the whole job lock-free: keys hash into a
//! sharded CAS-claimed id table that assigns dense ids on first touch, and
//! all merging runs on the same packed word-per-element core as the dense
//! structure (Jayanti & Tarjan's randomized linking underneath).
//!
//! Run with: `cargo run --release --example keyed_dedup`
//!
//! See `ARCHITECTURE.md` for where the keyed layer sits in the stack and
//! `docs/benchmarks.md` for its measured cost over the raw core.

use jt_dsu::KeyedDsu;
use std::thread;

/// One synthetic ingest record: a handful of identifiers that all refer
/// to the same underlying user.
fn record(user: usize, variant: usize) -> Vec<String> {
    let mut ids = vec![format!("email:user{user}@example.com")];
    // Every third variant also mentions the username, every fifth a device
    // — the cross-links that make the identifier graph connected per user.
    if variant.is_multiple_of(3) {
        ids.push(format!("name:user-{user}"));
    }
    if variant.is_multiple_of(5) {
        ids.push(format!("device:{:08x}", user * 7919 + variant));
    }
    ids
}

fn main() {
    let users = 10_000;
    let variants = 6;
    let dsu: KeyedDsu<String> = KeyedDsu::new();

    println!("resolving {} records across 8 ingest threads…", users * variants);
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for t in 0..8 {
            let dsu = &dsu;
            s.spawn(move || {
                // Threads interleave over users, so identifiers of the
                // same user are constantly claimed and merged by racing
                // threads — the case the id table's CAS protocol exists
                // for.
                for user in (t..users).step_by(8) {
                    for v in 0..variants {
                        let ids = record(user, v);
                        // Chain-merge the record's identifiers: after this,
                        // they are all in one set, whichever thread got
                        // each pair first.
                        for pair in ids.windows(2) {
                            dsu.merge_keys(&pair[0], &pair[1]);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    // Every identifier of a user resolves to one set; different users
    // never collide.
    assert!(dsu.same_set(&"email:user42@example.com".to_string(), &"name:user-42".to_string()));
    assert!(!dsu.same_set(&"email:user42@example.com".to_string(), &"name:user-43".to_string()));
    // Unseen identifiers are implicit singletons — no insertion on query.
    assert!(!dsu.same_set(&"email:unknown@example.com".to_string(), &"name:user-1".to_string()));

    println!(
        "done in {:.1} ms — {} identifiers resolved into {} users \
         ({} id-table growths, shard imbalance {:.2})",
        elapsed.as_secs_f64() * 1e3,
        dsu.key_count(),
        dsu.set_count(),
        dsu.id_table_resizes(),
        dsu.key_skew().imbalance,
    );
    assert_eq!(dsu.set_count(), users);

    // Bursts go through the batch path: resolve all keys in one gather
    // pass, then route the dense edges through `unite_batch` waves.
    let burst: Vec<(String, String)> = (0..users / 2)
        .map(|u| {
            (
                format!("email:user{u}@example.com"),
                format!("email:user{}@example.com", u + users / 2),
            )
        })
        .collect();
    let linked = dsu.merge_keys_batch(&burst);
    println!(
        "batched a {}-pair merge burst: {linked} links, {} users left",
        burst.len(),
        dsu.set_count()
    );
    assert_eq!(dsu.set_count(), users / 2);
}

//! Connected components of a random graph, sequentially and in parallel —
//! the application the paper's introduction leads with.
//!
//! Generates a `G(n, m)` graph near the connectivity threshold (so the
//! component structure is interesting), labels components three ways (BFS
//! oracle, sequential union-find, parallel concurrent union-find), checks
//! they agree, and prints timings plus the component-size profile.
//!
//! Run with: `cargo run --release --example connected_components`

use jt_dsu::dsu_graph::components::{count_components, parallel_components, sequential_components};
use jt_dsu::dsu_graph::gen;
use jt_dsu::Partition;
use std::time::Instant;

fn main() {
    let n = 1 << 20;
    let m = n / 2 + n / 4; // sub-critical-ish: many nontrivial components
    println!("G(n = {n}, m = {m})…");
    let g = gen::gnm(n, m, 42);

    let t0 = Instant::now();
    let bfs = g.to_csr().bfs_components();
    let bfs_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let seq = sequential_components(&g);
    let seq_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let par = parallel_components(&g, 8);
    let par_ms = t2.elapsed().as_secs_f64() * 1e3;

    // All three agree as partitions (labels may differ representative-wise).
    let oracle = Partition::from_labels(&bfs);
    assert_eq!(Partition::from_labels(&seq), oracle);
    assert_eq!(Partition::from_labels(&par), oracle);

    let k = count_components(oracle.labels());
    let sizes = oracle.set_sizes();
    println!("components: {k}");
    println!("largest components: {:?}", &sizes[..sizes.len().min(5)]);
    println!("BFS oracle:            {bfs_ms:>8.1} ms");
    println!("sequential union-find: {seq_ms:>8.1} ms");
    println!("parallel (8 threads):  {par_ms:>8.1} ms  ({:.2}x vs sequential)", seq_ms / par_ms);
}

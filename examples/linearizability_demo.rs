//! Watching linearizability happen: run a small concurrent execution on
//! the APRAM simulator under an adversarial schedule, print the timed
//! history, and let the Wing–Gong checker exhibit a witness order.
//!
//! Run with: `cargo run --release --example linearizability_demo`

use jt_dsu::apram::Weighted;
use jt_dsu::apram_dsu::{random_ids, run_concurrent, DsuProcess, Policy};
use jt_dsu::linearize::{check_linearizable, DsuOp, DsuSpec};

fn main() {
    let n = 5;
    let ids = random_ids(n, 99);
    // Three processes with overlapping unites and queries; the schedule is
    // skewed so process 0 races far ahead of process 2.
    let processes = vec![
        DsuProcess::new(
            vec![DsuOp::Unite(0, 1), DsuOp::SameSet(0, 3), DsuOp::Unite(1, 2)],
            Policy::TwoTry,
            false,
            ids.clone(),
        ),
        DsuProcess::new(
            vec![DsuOp::Unite(2, 3), DsuOp::SameSet(0, 2)],
            Policy::TwoTry,
            false,
            ids.clone(),
        ),
        DsuProcess::new(
            vec![DsuOp::SameSet(1, 3), DsuOp::Unite(3, 4)],
            Policy::TwoTry,
            false,
            ids.clone(),
        ),
    ];
    let mut schedule = Weighted::new(vec![20, 4, 1], 7);
    let outcome = run_concurrent(n, processes, &mut schedule, 100_000);

    println!("concurrent history (steps are the simulator's global clock):\n");
    for (pid, records) in outcome.records.iter().enumerate() {
        for r in records {
            println!(
                "  proc {pid}: {:?} -> {:<5}   [{:>3}, {:>3}]  ({} accesses)",
                r.op, r.result, r.invoked_at, r.returned_at, r.accesses
            );
        }
    }

    let history = outcome.history();
    match check_linearizable(&DsuSpec::new(n), &history) {
        Ok(witness) => {
            println!("\nlinearizable — witness order (indices into the merged history):");
            for &i in &witness {
                println!("  {:?} -> {}", history[i].op, history[i].result);
            }
        }
        Err(e) => {
            println!("\nNOT linearizable: {e}");
            println!("(this would refute the paper's Lemma 3.2 — it never happens)");
            std::process::exit(1);
        }
    }

    println!("\nfinal parent array: {:?}", outcome.parents());
    println!("final partition labels: {:?}", outcome.labels());
}

//! On-line incremental connectivity: writers stream graph edges in while
//! readers continuously answer connectivity queries — "maintaining
//! connected components in a graph under edge insertions" from the paper's
//! introduction, plus on-the-fly cycle detection.
//!
//! Also demonstrates the growable structure: vertices are *created* during
//! the stream (paper Section 3 remark / Section 7).
//!
//! Run with: `cargo run --release --example incremental_connectivity`

use jt_dsu::dsu_graph::incremental::{classify_edges, IncrementalConnectivity};
use jt_dsu::GrowableDsu;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    // Part 1: fixed universe, concurrent writers + readers.
    let n = 1 << 18;
    let conn = IncrementalConnectivity::new(n);
    let true_answers = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..4 {
            let conn = &conn;
            s.spawn(move || {
                for i in (t..n - 1).step_by(4) {
                    conn.insert(i, i + 1); // a long path, built out of order
                }
            });
        }
        for _ in 0..4 {
            let conn = &conn;
            let true_answers = &true_answers;
            s.spawn(move || {
                let mut local = 0;
                for i in (0..n).step_by(64) {
                    if conn.connected(i, (i + n / 2) % n) {
                        local += 1;
                    }
                }
                true_answers.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    println!(
        "streamed {} edges on 4 writer threads; readers saw {} early-true answers; \
         final components: {}",
        n - 1,
        true_answers.load(Ordering::Relaxed),
        conn.component_count()
    );
    assert_eq!(conn.component_count(), 1);

    // Part 2: cycle classification over a random stream.
    let edges: Vec<(usize, usize)> =
        (0..50_000).map(|i| ((i * 7919) % 10_000, (i * 104_729 + 3) % 10_000)).collect();
    let (forest, cycles) = classify_edges(10_000, &edges);
    println!("edge stream of {}: {forest} forest edges, {cycles} cycle edges", edges.len());

    // Part 3: growing universe — vertices appear as the stream mentions them.
    let dsu: GrowableDsu = GrowableDsu::new();
    let mut vertex_of = std::collections::HashMap::new();
    let mut intern = |dsu: &GrowableDsu, name: &str| {
        *vertex_of.entry(name.to_string()).or_insert_with(|| dsu.make_set())
    };
    let stream = [("a", "b"), ("c", "d"), ("b", "c"), ("e", "a")];
    for (u, v) in stream {
        let (x, y) = (intern(&dsu, u), intern(&dsu, v));
        let linked = dsu.unite(x, y);
        println!("insert ({u}, {v}): {}", if linked { "new link" } else { "cycle" });
    }
    assert!(dsu.same_set(vertex_of["e"], vertex_of["d"]));
    println!("growable universe ended with {} vertices in {} set(s)", dsu.len(), dsu.set_count());
}

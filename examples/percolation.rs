//! Percolation: the classroom union-find application (Sedgewick–Wayne),
//! cited in the paper's introduction via its textbook reference.
//!
//! Estimates the site-percolation threshold of square grids by Monte
//! Carlo, fanning independent trials across threads, and shows the
//! estimate converging toward the literature value p* ≈ 0.592746 as the
//! grid grows.
//!
//! Run with: `cargo run --release --example percolation`

use jt_dsu::dsu_graph::percolation::percolation_mc_parallel;
use std::time::Instant;

fn main() {
    const LITERATURE: f64 = 0.592_746;
    println!("site percolation on k×k grids, 64 trials each, 8 threads\n");
    println!("{:>6} {:>12} {:>12} {:>10}", "k", "estimate", "|err|", "ms");
    for k in [16usize, 32, 64, 128, 256] {
        let start = Instant::now();
        let estimate = percolation_mc_parallel(k, 64, 2024, 8);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{k:>6} {estimate:>12.4} {:>12.4} {ms:>10.1}", (estimate - LITERATURE).abs());
    }
    println!("\nliterature value: {LITERATURE}");
    println!("(finite-size effects shrink the error as k grows)");
}

//! Quickstart: concurrent disjoint set union across threads.
//!
//! Eight threads race to union a shuffled ring of `n` elements and query
//! connectivity while the structure is under mutation. No locks, no
//! coordination — the wait-free guarantees of Jayanti & Tarjan (PODC 2016)
//! do all the work.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Where to go next:
//! - `ARCHITECTURE.md` — the crate map and how the layers stack
//!   (stores → decorators → `Dsu`/`GrowableDsu` → batch/keyed), plus the
//!   "where to add X" guide.
//! - `docs/benchmarks.md` — every measured claim (the wins *and* the
//!   honest negatives) with its archived JSON artifact.
//! - `examples/keyed_dedup.rs` — string keys instead of dense indices:
//!   the `KeyedDsu` entity-resolution layer (see below).
//! - All `DSU_*` environment knobs are documented in one table in the
//!   `concurrent_dsu` crate docs (`crates/core/src/lib.rs`).

use jt_dsu::{Dsu, OpStats};
use std::thread;

fn main() {
    let n = 1_000_000;
    // Defaults: two-try splitting (the paper's best find variant) on the
    // packed store — parent and random id in one 64-bit word per element,
    // so the hot path touches half the memory of a split layout. Packing
    // caps the universe at 2^32 elements; for more, pick the flat layout
    // explicitly: `let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(n);`
    let dsu: Dsu = Dsu::new(n);

    println!("uniting a ring of {n} elements on 8 threads…");
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for t in 0..8 {
            let dsu = &dsu;
            s.spawn(move || {
                // Each thread takes every 8th ring edge; edges overlap in
                // elements, so threads constantly contend — safely.
                for i in (t..n - 1).step_by(8) {
                    dsu.unite(i, i + 1);
                }
                // Interleaved queries are linearizable: once true, a
                // same_set answer can never revert.
                assert!(dsu.same_set(t, t + 1));
            });
        }
    });
    let elapsed = start.elapsed();

    assert!(dsu.same_set(0, n - 1));
    assert_eq!(dsu.set_count(), 1);
    println!(
        "done in {:.1} ms — {} elements in {} set (height of union forest: {})",
        elapsed.as_secs_f64() * 1e3,
        n,
        dsu.set_count(),
        dsu.union_forest_height(),
    );

    // Instrumentation: count the work of a single query.
    let mut stats = OpStats::default();
    dsu.same_set_with(0, n / 2, &mut stats);
    println!(
        "one same_set after full compaction: {} find-loop iters, {} reads, {} CASes",
        stats.loop_iters,
        stats.reads,
        stats.cas_attempts(),
    );

    // Handing the structure to a long read-only phase? An explicit
    // `dsu.flatten()` (or `flatten_parallel(p)`) pointer-jumps every
    // element to depth <= 1, so each find after it is a single load —
    // safe even while unites race it. It's opt-in because it measured as
    // an honest negative on the standard mixes (splitting finds already
    // self-compact; BENCH_PR9.json), but `DSU_FLATTEN=auto` (or
    // `every=<k>` / `hops=<x>`) arms an adaptive trigger that sweeps
    // after ingested batches when sampled depth warrants it.
    dsu.flatten();
    assert!(dsu.union_forest_height() >= 1, "union forest is untouched; only paths flatten");

    // Elements that aren't dense integers? `jt_dsu::KeyedDsu` maps any
    // hashable key (strings, sparse u64s, row keys) to dense ids through
    // a lock-free sharded id table over the same core:
    let keyed: jt_dsu::KeyedDsu<String> = jt_dsu::KeyedDsu::new();
    keyed.merge_keys(&"user:42".to_string(), &"email:x@example.com".to_string());
    assert!(keyed.same_set(&"email:x@example.com".to_string(), &"user:42".to_string()));
    // (`cargo run --release --example keyed_dedup` for the full story;
    // `DSU_KEY_SHARDS` tunes the id-table shard count.)

    // Need an undo button? `VersionedDsu` wraps the growable core with
    // O(1) copy-on-write snapshots: `snapshot()` records the live
    // segments and bumps an epoch; only the first post-snapshot write to
    // each segment pays a fork, and `rollback` restores the forest
    // *bit-identically*. Snapshot handles also answer time-travel
    // queries while newer unites land.
    let mut versioned: jt_dsu::VersionedDsu = jt_dsu::VersionedDsu::with_initial(8);
    versioned.unite(0, 1);
    let guard = versioned.snapshot();
    versioned.unite(2, 3);
    assert!(versioned.same_set(2, 3));
    assert!(!versioned.same_set_at(guard, 2, 3)); // the past is frozen
    versioned.rollback(guard);
    assert!(versioned.same_set(0, 1) && !versioned.same_set(2, 3)); // undone

    // Untrusted upstream data? `try_unite_batch` ingests a whole batch
    // speculatively and lets a validator accept or reject the result —
    // rejection rolls the entire batch back as if it never happened:
    let outcome = versioned.try_unite_batch(&[(4, 5), (5, 6)], |_, linked| linked == 2);
    assert!(outcome.is_committed() && versioned.same_set(4, 6));
    let poisoned = versioned.try_unite_batch(&[(6, 7), (0, 4)], |dsu, _| !dsu.same_set(0, 5));
    assert!(!poisoned.is_committed() && !versioned.same_set(6, 7));
    // (`DSU_EPOCH_EVERY=<k>` keeps a rolling auto-snapshot before every
    // k-th ingested batch; unversioned structures pay zero for any of
    // this. `crates/graph`'s `percolation_threshold_versioned` shows the
    // payoff: exact thresholds via binary search over snapshot forks.)

    // Want to see the same run survive an adversary? Wrap any store in
    // `jt_dsu::concurrent_dsu::FaultyStore` to inject spurious CAS
    // failures, delayed loads, and stall windows from a seeded
    // `FaultPlan` — every verdict above must stay bit-identical, only
    // slower. `FaultyStore::with_seed` reads the `DSU_FAULT_SEED` and
    // `DSU_FAULT_RATE` env vars, so fault-test binaries can be chaosed
    // without recompiling, and the `chaos_ab` example
    // (`cargo run --release -p dsu-bench --example chaos_ab -- --quick true`)
    // sweeps fault rates × layouts × threads, checking recorded histories
    // for linearizability as it goes.
}

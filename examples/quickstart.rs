//! Quickstart: concurrent disjoint set union across threads.
//!
//! Eight threads race to union a shuffled ring of `n` elements and query
//! connectivity while the structure is under mutation. No locks, no
//! coordination — the wait-free guarantees of Jayanti & Tarjan (PODC 2016)
//! do all the work.
//!
//! Run with: `cargo run --release --example quickstart`

use jt_dsu::{Dsu, OpStats};
use std::thread;

fn main() {
    let n = 1_000_000;
    let dsu: Dsu = Dsu::new(n); // two-try splitting, the paper's best variant

    println!("uniting a ring of {n} elements on 8 threads…");
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for t in 0..8 {
            let dsu = &dsu;
            s.spawn(move || {
                // Each thread takes every 8th ring edge; edges overlap in
                // elements, so threads constantly contend — safely.
                for i in (t..n - 1).step_by(8) {
                    dsu.unite(i, i + 1);
                }
                // Interleaved queries are linearizable: once true, a
                // same_set answer can never revert.
                assert!(dsu.same_set(t, t + 1));
            });
        }
    });
    let elapsed = start.elapsed();

    assert!(dsu.same_set(0, n - 1));
    assert_eq!(dsu.set_count(), 1);
    println!(
        "done in {:.1} ms — {} elements in {} set (height of union forest: {})",
        elapsed.as_secs_f64() * 1e3,
        n,
        dsu.set_count(),
        dsu.union_forest_height(),
    );

    // Instrumentation: count the work of a single query.
    let mut stats = OpStats::default();
    dsu.same_set_with(0, n / 2, &mut stats);
    println!(
        "one same_set after full compaction: {} find-loop iters, {} reads, {} CASes",
        stats.loop_iters,
        stats.reads,
        stats.cas_attempts(),
    );
}

//! Minimum spanning forest two ways: classic Kruskal (sequential
//! union-find deciding cycle edges) and parallel Borůvka driven by the
//! concurrent structure. Distinct edge weights make the MSF unique, so the
//! two must return the *same tree* — a sharp check of `unite`'s
//! linearizable true/false answer.
//!
//! Run with: `cargo run --release --example kruskal_mst`

use jt_dsu::dsu_graph::gen;
use jt_dsu::dsu_graph::mst::{boruvka_parallel, kruskal};
use std::time::Instant;

fn main() {
    let n = 1 << 18;
    let m = 4 * n;
    println!("weighted G(n = {n}, m = {m}) with distinct weights…");
    let g = gen::gnm(n, m, 7);

    let t0 = Instant::now();
    let k = kruskal(&g);
    let k_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "kruskal:          weight {:>12}  edges {:>7}  {:>8.1} ms",
        k.total_weight,
        k.edges.len(),
        k_ms
    );

    for p in [1, 4, 8] {
        let t1 = Instant::now();
        let b = boruvka_parallel(&g, p);
        let b_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(b.total_weight, k.total_weight, "MSF weight must be unique");
        assert_eq!(b.edges, k.edges, "distinct weights ⇒ identical MSF edges");
        println!(
            "boruvka (p = {p}):  weight {:>12}  edges {:>7}  {:>8.1} ms  ({:.2}x vs kruskal)",
            b.total_weight,
            b.edges.len(),
            b_ms,
            k_ms / b_ms
        );
    }
    println!("parallel Borůvka reproduced Kruskal's tree edge-for-edge.");
}

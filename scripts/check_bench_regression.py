#!/usr/bin/env python3
"""Fail-soft bench regression gate for the CI bench-smoke job.

Compares the current run's A/B bench JSON files against the previous run's
(restored from the actions/cache baseline keyed on branch) and flags:

* any `*_median_ns` that regressed by more than THRESHOLD (absolute time
  per mode — catches "everything got slower"), and
* any `*_speedup` A/B *ratio* that shrank by more than THRESHOLD (the
  contender lost ground against its in-run baseline — catches "the
  optimized arm regressed" even when host drift moves both arms, which is
  why the ratio diff exists: medians from a shared CI box drift together,
  ratios don't).

Records carry a `machine` fingerprint (cpus, arch, os) stamped by the
bench examples; when the baseline was produced on a different machine the
comparison is skipped outright — cross-machine deltas are placement
noise, not regressions, and the per-machine JSON archive (ROADMAP bench
matrix) is the place they belong.

The gate is advisory by design: CI bench boxes are noisy shared VMs, so a
regression prints a warning block into the GitHub job summary (and
stdout) but never turns the job red. Treat a warning as "re-run / measure
on real hardware before merging a perf-sensitive change", not as a
verdict.

Usage:
    check_bench_regression.py [--report] BASELINE_DIR CURRENT_DIR FILE [FILE...]

With `--report`, each file's block is preceded by an audit line naming the
baseline and current machine fingerprints and the row keys actually
compared — so a skipped cross-machine baseline (or an empty row
intersection) is visible as data in the report itself, not only as
job-summary prose.

Each FILE is a JSON produced by one of the dsu-bench A/B examples
(`--json` flag): {"example": ..., "machine": {...}, "results":
[{"threads": N, "<mode>_median_ns": ..., "<mode>_speedup": ...}, ...]}.
Files missing from either directory are skipped with a note (first run on
a branch has no baseline yet).

Exit status is always 0.
"""

import json
import os
import sys

THRESHOLD = 1.15  # flag medians >15% slower, or ratios >15% smaller


def rows_by_threads(doc):
    """Rows keyed by (threads, n). `n` defaults to None for the examples
    that run a single size per invocation; examples that sweep sizes (e.g.
    bucket_ab archives, whose BENCH_PR5 record carries two universes) tag
    each row with its "n" so same-thread rows from different sizes don't
    collide in this dict."""
    return {
        (row.get("threads"), row.get("n")): row
        for row in doc.get("results", [])
        if "threads" in row
    }


def fingerprint(doc):
    """(cpus, arch, os) of the machine that produced a record, or None."""
    m = doc.get("machine")
    if not isinstance(m, dict):
        return None
    return (m.get("cpus"), m.get("arch"), m.get("os"))


def describe_key(row_key):
    """Human form of a (threads, n) row key."""
    if row_key[1] is None:
        return f"{row_key[0]}t"
    return f"{row_key[0]}t/n={row_key[1]}"


def compare_file(baseline_dir, current_dir, name, report=False):
    """Returns (lines, regression_count) for one bench JSON file."""
    b_path = os.path.join(baseline_dir, name)
    c_path = os.path.join(current_dir, name)
    if not os.path.exists(c_path):
        return ([f"- `{name}`: no current result — bench step skipped or failed?"], 0)
    if not os.path.exists(b_path):
        return ([f"- `{name}`: no baseline yet (first run for this branch) — recorded for next time"], 0)
    try:
        with open(b_path) as f:
            base = json.load(f)
        with open(c_path) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ([f"- `{name}`: unreadable ({e}) — skipped"], 0)

    b_fp, c_fp = fingerprint(base), fingerprint(cur)
    audit = []
    if report:
        compared = sorted(
            set(rows_by_threads(base)) & set(rows_by_threads(cur)),
            key=lambda k: (k[0], str(k[1])),
        )
        audit.append(
            f"- `{name}` report: baseline machine {b_fp}, current machine {c_fp}, "
            f"rows compared: {', '.join(describe_key(k) for k in compared) or '(none)'}"
        )
    if b_fp is not None and c_fp is not None and b_fp != c_fp:
        return (
            audit
            + [
                f"- `{name}`: baseline machine {b_fp} != current {c_fp} — "
                f"cross-machine comparison skipped; current recorded as the new baseline"
            ],
            0,
        )

    lines, regressions = audit, 0
    base_rows = rows_by_threads(base)
    # Stringify the key for sorting: a (threads, None) key must not be
    # compared against a (threads, int) one (mixed-shape docs).
    for row_key, row in sorted(
        rows_by_threads(cur).items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
    ):
        b_row = base_rows.get(row_key)
        threads = (
            f"{row_key[0]} threads"
            if row_key[1] is None
            else f"{row_key[0]} threads, n={row_key[1]}"
        )
        if b_row is None:
            continue
        for key in sorted(row):
            new, old = row.get(key), b_row.get(key)
            # Both sides must be positive numbers: the median branch
            # divides by old, the ratio branch by new, and a degenerate 0
            # must degrade to "skipped", never to an exception (the gate
            # promises exit 0).
            if (
                not isinstance(new, (int, float))
                or not isinstance(old, (int, float))
                or old <= 0
                or new <= 0
            ):
                continue
            if key.endswith("_median_ns"):
                ratio = new / old
                mode = key[: -len("_median_ns")]
                if ratio > THRESHOLD:
                    regressions += 1
                    lines.append(
                        f"- :warning: `{name}` **{mode}** @ {threads} regressed: "
                        f"{old:.0f} ns -> {new:.0f} ns ({ratio:.2f}x, threshold {THRESHOLD:.2f}x)"
                    )
                else:
                    lines.append(f"- `{name}` {mode} @ {threads}: {ratio:.2f}x baseline")
            elif key.endswith("_speedup"):
                shrink = old / new  # >1 means the A/B ratio got worse
                mode = key[: -len("_speedup")]
                if shrink > THRESHOLD:
                    regressions += 1
                    lines.append(
                        f"- :warning: `{name}` **{mode} ratio** @ {threads} shrank: "
                        f"{old:.3f}x -> {new:.3f}x ({shrink:.2f}x smaller, threshold {THRESHOLD:.2f}x)"
                    )
                else:
                    lines.append(
                        f"- `{name}` {mode} ratio @ {threads}: {old:.3f}x -> {new:.3f}x"
                    )
    return (lines, regressions)


def main(argv):
    args = [a for a in argv[1:] if a != "--report"]
    report_mode = len(args) < len(argv) - 1
    if len(args) < 3:
        print(__doc__)
        return 0
    baseline_dir, current_dir, names = args[0], args[1], args[2:]

    body, total_regressions = [], 0
    for name in names:
        lines, regs = compare_file(baseline_dir, current_dir, name, report=report_mode)
        body.extend(lines)
        total_regressions += regs

    if total_regressions:
        verdict = (
            f"**{total_regressions} median(s)/ratio(s) regressed > {round((THRESHOLD - 1) * 100)}% "
            f"vs the previous run.** Advisory only (shared CI hardware is noisy): "
            f"re-run, or confirm on dedicated hardware before trusting the number."
        )
    else:
        verdict = (
            f"No median or A/B ratio regressed more than {round((THRESHOLD - 1) * 100)}% "
            f"vs the previous run."
        )

    report = "\n".join(["## Bench regression check (fail-soft)", "", verdict, ""] + body) + "\n"
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(report)
    # Fail-soft: warnings only, never a red job.
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

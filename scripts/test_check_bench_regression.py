#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (run by the CI lint job).

The gate is the only thing standing between a silently regressed bench
and a merged PR, and it is fail-soft by contract — so a bug in it does
not fail loudly anywhere else. These fixtures pin the four behaviors the
CI wiring depends on:

* a >15% median regression is flagged,
* a >15% A/B speedup-ratio shrink is flagged (even when medians drift),
* baselines from a different machine fingerprint are refused (skipped),
* a missing baseline is a note, not an error,
* `--report` prints the machine fingerprints and the row keys compared
  (including for a cross-machine skip, where the fingerprints are the
  whole story),

and, across all of them, the exit status is 0 — fail-soft means the gate
may warn but must never turn the job red.

Run: python3 scripts/test_check_bench_regression.py
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate

MACHINE = {"cpus": 8, "arch": "x86_64", "os": "linux"}


def doc(rows, machine=MACHINE, example="variants_ab"):
    return {"example": example, "machine": machine, "results": rows}


def row(threads, n=None, **measures):
    r = {"threads": threads, **measures}
    if n is not None:
        r["n"] = n
    return r


class GateFixture(unittest.TestCase):
    """Writes baseline/current JSON pairs into temp dirs and runs main()."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self.tmp.name, "baseline")
        self.cur_dir = os.path.join(self.tmp.name, "current")
        os.makedirs(self.base_dir)
        os.makedirs(self.cur_dir)
        # The report must not leak into a real job summary during tests.
        os.environ.pop("GITHUB_STEP_SUMMARY", None)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, directory, name, document):
        with open(os.path.join(directory, name), "w") as f:
            json.dump(document, f)

    def run_gate(self, *names, report=False):
        out = io.StringIO()
        flags = ["--report"] if report else []
        with redirect_stdout(out):
            status = gate.main(["gate", *flags, self.base_dir, self.cur_dir, *names])
        return status, out.getvalue()

    def test_median_regression_is_flagged(self):
        self.write(self.base_dir, "a.json", doc([row(2, two_try_median_ns=100.0)]))
        self.write(self.cur_dir, "a.json", doc([row(2, two_try_median_ns=200.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0, "fail-soft: regressions still exit 0")
        self.assertIn(":warning:", report)
        self.assertIn("two_try", report)
        self.assertIn("regressed", report)

    def test_median_within_threshold_is_not_flagged(self):
        self.write(self.base_dir, "a.json", doc([row(2, two_try_median_ns=100.0)]))
        self.write(self.cur_dir, "a.json", doc([row(2, two_try_median_ns=110.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertNotIn(":warning:", report)
        self.assertIn("No median or A/B ratio regressed", report)

    def test_speedup_ratio_shrink_is_flagged_despite_median_drift(self):
        # Host drift: both arms got *faster* in absolute time, but the
        # contender lost ground against its in-run baseline (1.50x ->
        # 1.00x). Exactly the case the ratio diff exists to catch.
        self.write(
            self.base_dir,
            "a.json",
            doc([row(4, packed_median_ns=90.0, packed_speedup=1.50)]),
        )
        self.write(
            self.cur_dir,
            "a.json",
            doc([row(4, packed_median_ns=80.0, packed_speedup=1.00)]),
        )
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertIn(":warning:", report)
        self.assertIn("ratio", report)
        self.assertIn("shrank", report)

    def test_cross_machine_baseline_is_refused(self):
        other = {"cpus": 2, "arch": "aarch64", "os": "macos"}
        self.write(
            self.base_dir, "a.json", doc([row(2, m_median_ns=1.0)], machine=other)
        )
        # A 100x "regression" that must NOT be flagged: different machine.
        self.write(self.cur_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertNotIn(":warning:", report)
        self.assertIn("cross-machine comparison skipped", report)

    def test_missing_baseline_fails_soft(self):
        self.write(self.cur_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertNotIn(":warning:", report)
        self.assertIn("no baseline yet", report)

    def test_missing_current_fails_soft(self):
        self.write(self.base_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertIn("no current result", report)

    def test_unreadable_json_fails_soft(self):
        self.write(self.base_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        with open(os.path.join(self.cur_dir, "a.json"), "w") as f:
            f.write("{not json")
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertIn("unreadable", report)

    def test_rows_keyed_by_threads_and_n(self):
        # Two universes at the same thread count (bucket_ab / variants_ab
        # shape): the n=65536 row regressed, the n=8388608 row did not —
        # only the former may be flagged, so the keys must not collide.
        base = doc(
            [
                row(1, n=65536, v_median_ns=100.0),
                row(1, n=8388608, v_median_ns=1000.0),
            ]
        )
        cur = doc(
            [
                row(1, n=65536, v_median_ns=200.0),
                row(1, n=8388608, v_median_ns=1000.0),
            ]
        )
        self.write(self.base_dir, "a.json", base)
        self.write(self.cur_dir, "a.json", cur)
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        flagged = [l for l in report.splitlines() if ":warning:" in l]
        self.assertEqual(len(flagged), 1)
        self.assertIn("n=65536", flagged[0])

    def test_report_flag_prints_fingerprint_and_compared_rows(self):
        self.write(
            self.base_dir,
            "a.json",
            doc([row(1, n=65536, m_median_ns=100.0), row(2, n=65536, m_median_ns=100.0)]),
        )
        self.write(
            self.cur_dir,
            "a.json",
            doc([row(1, n=65536, m_median_ns=100.0), row(4, n=65536, m_median_ns=100.0)]),
        )
        status, report = self.run_gate("a.json", report=True)
        self.assertEqual(status, 0)
        self.assertIn("report:", report)
        self.assertIn("(8, 'x86_64', 'linux')", report)
        # Only the intersection is compared: threads=1 in both docs.
        self.assertIn("rows compared: 1t/n=65536", report)
        self.assertNotIn("2t/n=65536", report.split("report:")[1].splitlines()[0])

    def test_report_flag_names_both_machines_on_cross_machine_skip(self):
        other = {"cpus": 2, "arch": "aarch64", "os": "macos"}
        self.write(self.base_dir, "a.json", doc([row(2, m_median_ns=1.0)], machine=other))
        self.write(self.cur_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json", report=True)
        self.assertEqual(status, 0)
        self.assertIn("report:", report)
        self.assertIn("(2, 'aarch64', 'macos')", report)
        self.assertIn("cross-machine comparison skipped", report)

    def test_without_report_flag_no_audit_line(self):
        self.write(self.base_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        self.write(self.cur_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertNotIn("report:", report)

    def test_degenerate_zero_median_is_skipped_not_crashed(self):
        self.write(self.base_dir, "a.json", doc([row(2, m_median_ns=0)]))
        self.write(self.cur_dir, "a.json", doc([row(2, m_median_ns=100.0)]))
        status, report = self.run_gate("a.json")
        self.assertEqual(status, 0)
        self.assertNotIn(":warning:", report)


if __name__ == "__main__":
    unittest.main()
